"""Deterministic, seed-derived mutations over fault schedules.

Every schedule the fuzzer ever runs is identified by a **lineage** string
and is bit-reproducible from ``(campaign_seed, lineage)`` alone:

* a seed-corpus root is ``g:<kind>:<salt>`` — generator ``kind`` driven
  by ``rng_for(campaign_seed, lineage)``;
* each mutation appends ``/m<salt>:<op>``; a splice embeds its donor's
  whole lineage, parenthesized: ``/m<salt>:splice(<donor lineage>)``.

The RNG for a step is derived by BLAKE2b from the campaign seed and the
*full lineage up to and including that step's token*, so replaying a
lineage re-derives exactly the draws the original mutation made — no
corpus file needed to reproduce a finding (:func:`rebuild_from_lineage`).

Mutants are canonicalized (entries sorted: timed by time, then
phase-triggered) and validated before being accepted: a mutant with an
injector no-op entry (target already failed, see
:func:`~repro.campaign.schedule.redundant_entries`), with no timed entry
to start the action, or outside the machine shape is rejected and the
engine simply tries the next salt.
"""

import dataclasses
import hashlib
import json
import random

from repro.campaign.schedule import (
    RECOVERY_PHASES,
    FaultSchedule,
    TimedFault,
    make_schedule,
    redundant_entries,
    valid_for_machine,
)
from repro.faults.models import FaultSpec, FaultType
from repro.interconnect.topology import make_topology

#: hard bounds keeping mutants runnable on small campaign machines
MAX_ENTRIES = 5
MAX_TIME_NS = 5_000_000.0

#: fault models that are mutual swap alternatives (same target shape)
_LINK_MODELS = (FaultType.LINK_FAILURE, FaultType.TRANSIENT_LINK_FAILURE,
                FaultType.INTERMITTENT_LINK)
_NODE_MODELS = (FaultType.NODE_FAILURE, FaultType.ROUTER_FAILURE,
                FaultType.INFINITE_LOOP, FaultType.DELAYED_WEDGE)


def rng_for(campaign_seed, lineage):
    """The deterministic RNG of one lineage step (BLAKE2b-derived)."""
    digest = hashlib.blake2b(
        ("%d|%s" % (campaign_seed, lineage)).encode("utf-8"),
        digest_size=8).digest()
    return random.Random(int.from_bytes(digest, "big"))


def root_lineage(kind, salt):
    return "g:%s:%d" % (kind, salt)


def root_schedule(campaign_seed, kind, salt, num_nodes=8, topology="mesh"):
    """A seed-corpus schedule and its lineage (shared with rebuild)."""
    lineage = root_lineage(kind, salt)
    schedule = make_schedule(kind, rng_for(campaign_seed, lineage),
                             num_nodes=num_nodes, topology=topology)
    return schedule, lineage


# ------------------------------------------------------------- operators

def _place(rng, spec):
    """A schedule entry for a fresh spec: usually timed, sometimes armed
    on a recovery phase (the §4.1 restart stressor)."""
    if rng.random() < 0.25:
        phase = rng.choice(RECOVERY_PHASES)
        phase_node = (spec.target if not spec.is_link_fault
                      and spec.destroys_node_state else None)
        return TimedFault(spec, phase=phase, phase_node=phase_node)
    return TimedFault(spec, time=rng.uniform(0.0, 2_000_000.0))


def _op_add(schedule, _donor, rng, topo):
    if len(schedule.entries) >= MAX_ENTRIES:
        return None
    exclude = schedule.excluded_targets(topo) | {0}
    try:
        spec = FaultSpec.random(rng, topo, exclude=exclude)
    except ValueError:
        # Everything usable is already failed — no room to grow.
        return None
    return schedule.replace(entries=schedule.entries + (_place(rng, spec),))


def _op_remove(schedule, _donor, rng, _topo):
    if len(schedule.entries) < 2:
        return None
    index = rng.randrange(len(schedule.entries))
    entries = schedule.entries[:index] + schedule.entries[index + 1:]
    return schedule.replace(entries=entries)


def _op_move(schedule, _donor, rng, _topo):
    index = rng.randrange(len(schedule.entries))
    entry = schedule.entries[index]
    if entry.phase is None:
        entry = dataclasses.replace(
            entry, time=rng.uniform(0.0, 2_000_000.0))
    else:
        entry = dataclasses.replace(entry, phase=rng.choice(RECOVERY_PHASES))
    return _with_entry(schedule, index, entry)


def _op_retarget(schedule, _donor, rng, topo):
    index = rng.randrange(len(schedule.entries))
    entry = schedule.entries[index]
    spec = entry.spec
    exclude = {0}
    for other in schedule.entries:
        if other is not entry:
            exclude |= other.spec.excluded_targets(topo)
    try:
        drawn = FaultSpec.random(rng, topo, spec.fault_type, exclude=exclude)
    except ValueError:
        return None
    # Retarget means *move* the fault, not reroll it: keep its model
    # parameters on the new target.
    drawn = dataclasses.replace(drawn, dwell=spec.dwell,
                                drop_rate=spec.drop_rate)
    if entry.phase_node is not None and not drawn.is_link_fault:
        entry = dataclasses.replace(entry, spec=drawn,
                                    phase_node=drawn.target)
    else:
        entry = dataclasses.replace(entry, spec=drawn)
    return _with_entry(schedule, index, entry)


def _swap_spec(rng, spec, new_type):
    target = spec.target
    if new_type == FaultType.TRANSIENT_LINK_FAILURE:
        return FaultSpec.transient_link_failure(
            *target, dwell=spec.dwell or rng.uniform(200_000.0,
                                                     5_000_000.0))
    if new_type == FaultType.INTERMITTENT_LINK:
        return FaultSpec.intermittent_link(
            *target, drop_rate=spec.drop_rate or rng.uniform(0.05, 0.5))
    if new_type == FaultType.LINK_FAILURE:
        return FaultSpec.link_failure(*target)
    if new_type == FaultType.DELAYED_WEDGE:
        return FaultSpec.delayed_wedge(
            target, dwell=spec.dwell or rng.uniform(200_000.0,
                                                    5_000_000.0))
    return FaultSpec(new_type, target)


def _op_swap_model(schedule, _donor, rng, _topo):
    index = rng.randrange(len(schedule.entries))
    entry = schedule.entries[index]
    models = (_LINK_MODELS if entry.spec.is_link_fault else
              _NODE_MODELS if entry.spec.fault_type in _NODE_MODELS
              else ())
    alternatives = [model for model in models
                    if model != entry.spec.fault_type]
    if not alternatives:
        return None   # FALSE_ALARM has no model siblings
    new_type = rng.choice(alternatives)
    entry = dataclasses.replace(entry,
                                spec=_swap_spec(rng, entry.spec, new_type))
    return _with_entry(schedule, index, entry)


def _op_perturb_time(schedule, _donor, rng, _topo):
    timed = [index for index, entry in enumerate(schedule.entries)
             if entry.phase is None]
    if not timed:
        return None
    index = rng.choice(timed)
    entry = schedule.entries[index]
    time = min(MAX_TIME_NS,
               entry.time * rng.uniform(0.25, 4.0)
               + rng.uniform(0.0, 50_000.0))
    return _with_entry(schedule, index,
                       dataclasses.replace(entry, time=time))


def _op_flip_trigger(schedule, _donor, rng, _topo):
    index = rng.randrange(len(schedule.entries))
    entry = schedule.entries[index]
    spec = entry.spec
    if entry.phase is None:
        phase_node = (spec.target if not spec.is_link_fault
                      and spec.destroys_node_state else None)
        entry = dataclasses.replace(entry, time=0.0,
                                    phase=rng.choice(RECOVERY_PHASES),
                                    phase_node=phase_node)
    else:
        entry = dataclasses.replace(entry, phase=None, phase_node=None,
                                    time=rng.uniform(0.0, 2_000_000.0))
    return _with_entry(schedule, index, entry)


def _op_splice(schedule, donor, rng, topo):
    """Parent prefix + whatever of the donor still fits without no-ops."""
    if donor is None or not donor.entries:
        return None
    keep = rng.randint(1, len(schedule.entries))
    entries = list(schedule.entries[:keep])
    used = set()
    for entry in entries:
        used |= entry.spec.excluded_targets(topo)
    for entry in donor.entries:
        if len(entries) >= MAX_ENTRIES:
            break
        if entry.spec.excluded_targets() & used:
            continue
        used |= entry.spec.excluded_targets(topo)
        entries.append(entry)
    if tuple(entries) == schedule.entries:
        return None   # donor contributed nothing
    return schedule.replace(entries=tuple(entries))


def _with_entry(schedule, index, entry):
    entries = (schedule.entries[:index] + (entry,)
               + schedule.entries[index + 1:])
    return schedule.replace(entries=entries)


#: stable operator order — part of the determinism contract: reordering
#: or renaming changes which op a given lineage salt selects
MUTATION_OPS = (
    ("add", _op_add),
    ("remove", _op_remove),
    ("move", _op_move),
    ("retarget", _op_retarget),
    ("swap-model", _op_swap_model),
    ("perturb-time", _op_perturb_time),
    ("flip-trigger", _op_flip_trigger),
    ("splice", _op_splice),
)

_OPS_BY_NAME = dict(MUTATION_OPS)


# ---------------------------------------------------- canonical + validity

def _entry_key(entry):
    return (0 if entry.phase is None else 1,
            entry.time,
            entry.phase or "",
            -1 if entry.phase_node is None else entry.phase_node,
            json.dumps(entry.spec.to_dict(), sort_keys=True))


def canonical(schedule):
    """Entries in canonical order (timed by time, then phase-armed), so
    permutation-equivalent mutants share one corpus fingerprint."""
    return schedule.replace(entries=tuple(sorted(schedule.entries,
                                                 key=_entry_key)))


def acceptable(schedule):
    """Is this mutant worth running at all?

    Rejects empty schedules, over-long ones, targets outside the machine
    shape, schedules with no timed entry (a purely phase-armed schedule
    never starts an episode, so nothing ever fires) and — the satellite
    seam rule — schedules with injector no-op entries.
    """
    if not schedule.entries or len(schedule.entries) > MAX_ENTRIES:
        return False
    if not any(entry.phase is None for entry in schedule.entries):
        return False
    if not valid_for_machine(schedule, schedule.num_nodes):
        return False
    return not redundant_entries(schedule)


# ------------------------------------------------------------ mutate/rebuild

def mutate(campaign_seed, parent, parent_lineage, salt,
           donor=None, donor_lineage=None):
    """One deterministic mutation attempt.

    Returns ``(schedule, lineage, op_name)``, or None when the selected
    operator does not apply or produced an unacceptable mutant — the
    caller tries the next salt (the lineage embeds the salt, so skipped
    attempts cost nothing and successful ones stay reproducible).
    """
    chooser = rng_for(campaign_seed, "%s/m%d?" % (parent_lineage, salt))
    names = [name for name, _op in MUTATION_OPS
             if name != "splice" or donor is not None]
    op_name = chooser.choice(names)
    if op_name == "splice":
        token = "m%d:splice(%s)" % (salt, donor_lineage)
    else:
        token = "m%d:%s" % (salt, op_name)
    lineage = "%s/%s" % (parent_lineage, token)
    topo = make_topology(parent.topology, parent.num_nodes)
    mutant = _OPS_BY_NAME[op_name](parent, donor,
                                   rng_for(campaign_seed, lineage), topo)
    if mutant is None:
        return None
    mutant = canonical(mutant)
    if not acceptable(mutant):
        return None
    return mutant, lineage, op_name


def split_lineage(lineage):
    """Top-level lineage tokens ('/'-separated, parens protect donors)."""
    tokens = []
    depth = 0
    current = []
    for char in lineage:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "/" and depth == 0:
            tokens.append("".join(current))
            current = []
        else:
            current.append(char)
    tokens.append("".join(current))
    return tokens


def _parse_mutation_token(token):
    """'m3:splice(g:x:1/m0:add)' -> (3, 'splice', 'g:x:1/m0:add')."""
    if not token.startswith("m"):
        raise ValueError("bad lineage token %r" % token)
    head, _, op = token.partition(":")
    salt = int(head[1:])
    if op.startswith("splice(") and op.endswith(")"):
        return salt, "splice", op[len("splice("):-1]
    if op not in _OPS_BY_NAME or op == "splice":
        raise ValueError("unknown mutation op in token %r" % token)
    return salt, op, None


def rebuild_from_lineage(campaign_seed, lineage, num_nodes=8,
                         topology="mesh"):
    """The exact schedule a lineage denotes — no corpus file needed.

    Raises ValueError on a malformed lineage or one whose steps no longer
    apply (which can only happen if the operator set changed).
    """
    tokens = split_lineage(lineage)
    root = tokens[0]
    parts = root.split(":")
    if len(parts) != 3 or parts[0] != "g":
        raise ValueError("lineage must start with g:<kind>:<salt>, got %r"
                         % root)
    schedule, prefix = root_schedule(campaign_seed, parts[1], int(parts[2]),
                                     num_nodes=num_nodes, topology=topology)
    topo = make_topology(topology, num_nodes)
    for token in tokens[1:]:
        _salt, op_name, donor_lineage = _parse_mutation_token(token)
        donor = None
        if donor_lineage is not None:
            donor = rebuild_from_lineage(campaign_seed, donor_lineage,
                                         num_nodes=num_nodes,
                                         topology=topology)
        step_lineage = "%s/%s" % (prefix, token)
        mutant = _OPS_BY_NAME[op_name](
            schedule, donor, rng_for(campaign_seed, step_lineage), topo)
        if mutant is None:
            raise ValueError("lineage step %r no longer applies" % token)
        schedule = canonical(mutant)
        prefix = step_lineage
    return schedule


def derive_mutant_seed(campaign_seed, lineage):
    """The machine seed a lineage runs with (stable, 63-bit)."""
    digest = hashlib.blake2b(
        ("seed:%d|%s" % (campaign_seed, lineage)).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1
