"""The coverage-guided fuzz loop.

One session owns a machine shape and a campaign seed.  The loop:

1. seed the corpus by running every registered schedule generator;
2. repeatedly pick an energy-weighted parent from the corpus, mutate it
   (:mod:`repro.fuzz.mutate`), and run the mutant in a crash-isolated
   batch worker (:mod:`repro.campaign.pool`) with coverage extraction on;
3. admit any run that reached new coverage
   (:class:`~repro.fuzz.coverage.CoverageMap`) into the corpus;
4. when the budget (runs or wall clock) is spent, route every failing run
   through the greedy shrinker and emit ready-to-paste reproduction
   commands.

Resumability: every finished run appends one JSONL record; restarting
with the same output directory reloads the corpus and replays the
records through a fresh coverage map, then continues planning at the
next run index.  Every schedule is bit-reproducible from
``(campaign_seed, lineage)`` alone — see ``repro.cli fuzz --replay``.

Planning note: with ``jobs > 1`` the *trajectory* (which parent breeds
when) depends on result arrival order, exactly as in AFL; the
determinism contract is per-schedule via lineage, not per-session.  With
``jobs=1`` the whole session is deterministic.
"""

# repro-lint: disable-file=wall-clock — the fuzz loop is a real-time
# boundary like the campaign runner: wall-clock budgets and per-run
# elapsed times are measured here, around crash-isolated workers.

import json
import os
import time

from repro.campaign.pool import BatchWorkerPool
from repro.campaign.records import RunStatus
from repro.campaign.runner import run_schedule_isolated
from repro.campaign.schedule import SCHEDULE_GENERATORS, FaultSchedule
from repro.campaign.shrink import repro_command, shrink_schedule
from repro.fuzz.corpus import Corpus, CorpusEntry, schedule_fingerprint
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.mutate import (
    derive_mutant_seed,
    mutate,
    rng_for,
    root_schedule,
)
from repro.telemetry.metrics import Histogram

#: mutation attempts per planned run before falling back to a fresh root
_MUTATE_ATTEMPTS = 8

#: fraction of post-seed runs planned as fresh generator roots anyway,
#: so the corpus never inbreeds to a single family
_FRESH_ROOT_RATE = 0.1


class FuzzEngine:
    """Drive one coverage-guided fuzzing session."""

    def __init__(self, campaign_seed=0, num_nodes=8, topology="mesh",
                 runs=200, wall_clock_s=None, jobs=1, timeout_s=120.0,
                 run_limit=60_000_000_000, mem_per_node=64 << 10,
                 l2_size=8 << 10, out_dir=None, strategy="coverage",
                 max_shrinks=3, shrink_checks=40, progress=None):
        self.campaign_seed = campaign_seed
        self.num_nodes = num_nodes
        self.topology = topology
        self.runs = runs
        self.wall_clock_s = wall_clock_s
        self.jobs = max(1, jobs)
        self.timeout_s = timeout_s
        self.run_limit = run_limit
        self.mem_per_node = mem_per_node
        self.l2_size = l2_size
        self.out_dir = out_dir
        self.strategy = strategy
        self.max_shrinks = max_shrinks
        self.shrink_checks = shrink_checks
        self.progress = progress

        self.coverage = CoverageMap()
        self.corpus = Corpus()
        self.containment = Histogram()
        self.growth = []          # (run_count, coverage_size) checkpoints
        self.failures = []        # finished-run dicts with status != PASS
        self.seen_fingerprints = set()
        self.stats = {
            "runs": 0, "pass": 0, "fail": 0, "crashed": 0, "hung": 0,
            "skip_noop": 0, "skip_dup": 0, "new_coverage_runs": 0,
            "injector_skips": 0, "fresh_roots": 0,
        }
        self._next_index = 0
        self._kinds = sorted(SCHEDULE_GENERATORS)

    # ------------------------------------------------------------ paths

    def _path(self, name):
        if self.out_dir is None:
            return None
        return os.path.join(self.out_dir, name)

    @property
    def records_path(self):
        return self._path("records.jsonl")

    @property
    def corpus_path(self):
        return self._path("corpus.jsonl")

    @property
    def failures_path(self):
        return self._path("failures.jsonl")

    # ----------------------------------------------------------- resume

    def resume(self):
        """Reload corpus + records from ``out_dir``; returns runs done."""
        if self.out_dir is None:
            return 0
        self.corpus = Corpus.load(self.corpus_path)
        records = _load_json_lines(self.records_path)
        for record in sorted(records, key=lambda r: r.get("run_index", 0)):
            self._account(record, record.get("features", ()),
                          persist=False)
            self._next_index = max(self._next_index,
                                   record.get("run_index", -1) + 1)
            self.seen_fingerprints.add(record.get("fingerprint", ""))
        return self.stats["runs"]

    # --------------------------------------------------------- planning

    def _plan_root(self, run_index, salt=None):
        kind = self._kinds[run_index % len(self._kinds)]
        salt = run_index // len(self._kinds) if salt is None else salt
        schedule, lineage = root_schedule(
            self.campaign_seed, kind, salt,
            num_nodes=self.num_nodes, topology=self.topology)
        return schedule, lineage, "seed"

    def _plan_next(self, run_index):
        """The (schedule, lineage, op) of the next run to launch."""
        seeding = run_index < len(self._kinds)
        if seeding or self.strategy == "random" or not len(self.corpus):
            if not seeding:
                self.stats["fresh_roots"] += 1
            return self._plan_root(run_index)
        rng = rng_for(self.campaign_seed, "plan:%d" % run_index)
        if rng.random() < _FRESH_ROOT_RATE:
            self.stats["fresh_roots"] += 1
            return self._plan_root(run_index)
        parent = self.corpus.select_parent(rng, self.coverage)
        donor = self.corpus.select_donor(rng, parent)
        for attempt in range(_MUTATE_ATTEMPTS):
            salt = run_index * _MUTATE_ATTEMPTS + attempt
            bred = mutate(
                self.campaign_seed, parent.schedule, parent.lineage, salt,
                donor=None if donor is None else donor.schedule,
                donor_lineage=None if donor is None else donor.lineage)
            if bred is None:
                self.stats["skip_noop"] += 1
                continue
            schedule, lineage, op = bred
            if schedule_fingerprint(schedule) in self.seen_fingerprints:
                self.stats["skip_dup"] += 1
                continue
            return schedule, lineage, op
        # Every attempt no-opped or duplicated: explore instead.
        self.stats["fresh_roots"] += 1
        return self._plan_root(run_index, salt=run_index)

    # --------------------------------------------------------- absorbing

    def _absorb(self, plan, payload):
        """Fold one finished run into coverage, corpus, stats, records."""
        run_index, lineage, op, schedule, seed = plan
        cover = payload.get("coverage", {})
        features = cover.get("features", [])
        record = {
            "run_index": run_index,
            "lineage": lineage,
            "op": op,
            "seed": seed,
            "status": payload["status"],
            "schedule": schedule.to_dict(),
            "fingerprint": schedule_fingerprint(schedule),
            "features": features,
            "elapsed_s": payload.get("elapsed_s", 0.0),
            "escape": cover.get("escape", False),
            "containment_ns": cover.get("containment_ns", []),
            "injector_skips": cover.get("skipped_injections", 0),
        }
        if payload.get("problems"):
            record["problems"] = list(payload["problems"])
        if payload.get("error"):
            record["error"] = payload["error"]
        if payload.get("forensics"):
            record["forensics"] = payload["forensics"]
        new = self._account(record, features, persist=True)
        record["new_features"] = new
        if self.records_path:
            _append_json_line(self.records_path, record)
        if self.progress is not None:
            self.progress(record)
        return record

    def _account(self, record, features, persist):
        """Shared state update for live results and resumed records."""
        status = record["status"]
        self.stats["runs"] += 1
        self.stats[status if status in ("pass", "fail") else
                   ("crashed" if status == RunStatus.CRASHED.value
                    else "hung")] += 1
        self.stats["injector_skips"] += record.get("injector_skips", 0)
        self.seen_fingerprints.add(record.get("fingerprint", ""))
        for value in record.get("containment_ns", ()):
            self.containment.observe(value)
        new = self.coverage.add(features)
        if new:
            self.stats["new_coverage_runs"] += 1
            self.growth.append((self.stats["runs"], len(self.coverage)))
            schedule = FaultSchedule.from_dict(record["schedule"])
            entry = CorpusEntry(
                lineage=record["lineage"], schedule=schedule,
                seed=record["seed"], features=features,
                new_features=new, op=record.get("op", "seed"))
            if self.corpus.add(entry) and persist and self.corpus_path:
                self.corpus.append_to(self.corpus_path, entry)
        if status != RunStatus.PASS.value:
            self.failures.append(record)
        return new

    # ------------------------------------------------------------ driving

    def _budget_left(self, started):
        if self.wall_clock_s is not None:
            return time.monotonic() - started < self.wall_clock_s
        return self._next_index < self.runs

    def _status_writer(self):
        """Heartbeat sidecar in the session directory (None without one)."""
        if self.out_dir is None:
            return None
        from repro.telemetry.status import StatusWriter
        return StatusWriter(self._path("status.json"), kind="fuzz",
                            total=None if self.wall_clock_s is not None
                            else self.runs)

    def run(self):
        """Execute the session; returns the report dict."""
        if self.out_dir is not None:
            os.makedirs(self.out_dir, exist_ok=True)
        started = time.monotonic()
        status = self._status_writer()
        plans = {}
        with BatchWorkerPool(jobs=self.jobs, timeout_s=self.timeout_s,
                             run_limit=self.run_limit,
                             mem_per_node=self.mem_per_node,
                             l2_size=self.l2_size, coverage=True) as pool:
            while self._budget_left(started) or plans:
                while self._budget_left(started) and pool.idle_count():
                    run_index = self._next_index
                    self._next_index += 1
                    schedule, lineage, op = self._plan_next(run_index)
                    seed = derive_mutant_seed(self.campaign_seed, lineage)
                    plans[run_index] = (run_index, lineage, op, schedule,
                                        seed)
                    pool.submit(run_index, schedule.to_dict(), seed)
                time.sleep(0.02)
                for run_index, payload in pool.poll():
                    self._absorb(plans.pop(run_index), payload)
                if status is not None:
                    now = time.monotonic()
                    status.update(
                        done=self.stats["runs"],
                        counts={key: self.stats[key] for key in
                                ("pass", "fail", "crashed", "hung")},
                        in_flight=[
                            {"run_index": worker.task[0],
                             "elapsed_s": round(now - worker.started, 2)}
                            for worker in pool.workers
                            if worker.task is not None],
                        extras={
                            "coverage_features": len(self.coverage),
                            "corpus_size": len(self.corpus),
                            "failures": len(self.failures)})
        if status is not None:
            status.update(
                done=self.stats["runs"],
                counts={key: self.stats[key] for key in
                        ("pass", "fail", "crashed", "hung")},
                extras={"coverage_features": len(self.coverage),
                        "corpus_size": len(self.corpus),
                        "failures": len(self.failures)},
                finished=True, force=True)
        shrunk = self._shrink_failures()
        return self.report(elapsed_s=time.monotonic() - started,
                           shrunk=shrunk)

    # ----------------------------------------------------------- shrinking

    def _shrink_failures(self):
        """Minimize the first few distinct failures; returns their dicts."""
        shrunk = []
        seen = set()
        for failure in self.failures:
            if len(shrunk) >= self.max_shrinks:
                break
            if failure["fingerprint"] in seen:
                continue
            seen.add(failure["fingerprint"])
            schedule = FaultSchedule.from_dict(failure["schedule"])
            seed = failure["seed"]

            def still_fails(candidate):
                record = run_schedule_isolated(
                    candidate, seed, timeout_s=self.timeout_s,
                    run_limit=self.run_limit,
                    mem_per_node=self.mem_per_node, l2_size=self.l2_size)
                return record.status is not RunStatus.PASS

            result = shrink_schedule(schedule, still_fails,
                                     max_checks=self.shrink_checks)
            entry = {
                "run_index": failure["run_index"],
                "lineage": failure["lineage"],
                "seed": seed,
                "status": failure["status"],
                "problems": failure.get("problems", []),
                "forensics": failure.get("forensics", {}),
                "schedule": failure["schedule"],
                "shrunk_schedule": result.schedule.to_dict(),
                "shrink_steps": result.steps,
                "shrink_checks": result.checks,
                "repro": repro_command(result.schedule, seed),
                "replay": self.replay_command(failure["lineage"]),
            }
            shrunk.append(entry)
            if self.failures_path:
                _append_json_line(self.failures_path, entry)
        return shrunk

    def replay_command(self, lineage):
        """Ready-to-paste bit-identical replay of one lineage."""
        return ("PYTHONPATH=src python -m repro.cli fuzz --replay '%s' "
                "--seed %d --nodes-count %d --topology %s"
                % (lineage, self.campaign_seed, self.num_nodes,
                   self.topology))

    # ------------------------------------------------------------ reporting

    def report(self, elapsed_s=0.0, shrunk=()):
        percentiles = (self.containment.percentiles()
                       if self.containment.count else {})
        return {
            "campaign_seed": self.campaign_seed,
            "num_nodes": self.num_nodes,
            "topology": self.topology,
            "strategy": self.strategy,
            "elapsed_s": elapsed_s,
            "stats": dict(self.stats),
            "coverage_features": len(self.coverage),
            "corpus_size": len(self.corpus),
            "growth": list(self.growth),
            "containment_ns": {
                "count": self.containment.count,
                "p50": percentiles.get("p50"),
                "p95": percentiles.get("p95"),
                "p99": percentiles.get("p99"),
            },
            "failures": len(self.failures),
            "shrunk": list(shrunk),
        }


def format_report(report):
    """Human-readable session summary with the coverage growth curve."""
    stats = report["stats"]
    lines = []
    lines.append("fuzz session: seed=%d %d nodes %s, strategy=%s"
                 % (report["campaign_seed"], report["num_nodes"],
                    report["topology"], report["strategy"]))
    lines.append("  %d runs in %.1fs — %d pass, %d fail, %d crashed, "
                 "%d hung" % (stats["runs"], report["elapsed_s"],
                              stats["pass"], stats["fail"],
                              stats["crashed"], stats["hung"]))
    lines.append("  coverage: %d features, corpus %d schedules "
                 "(%d runs hit new coverage, %d fresh roots)"
                 % (report["coverage_features"], report["corpus_size"],
                    stats["new_coverage_runs"], stats["fresh_roots"]))
    lines.append("  mutation skips: %d no-op/invalid, %d duplicate; "
                 "injector skips in runs: %d"
                 % (stats["skip_noop"], stats["skip_dup"],
                    stats["injector_skips"]))
    growth = report["growth"]
    if growth:
        curve = "  growth: " + " ".join(
            "%d:%d" % point for point in _thin(growth, 12))
        lines.append(curve)
    containment = report["containment_ns"]
    if containment["count"]:
        lines.append("  containment time (ns, %d episodes): p50=%s "
                     "p95=%s p99=%s"
                     % (containment["count"], containment["p50"],
                        containment["p95"], containment["p99"]))
    lines.append("  failures: %d (%d shrunk)"
                 % (report["failures"], len(report["shrunk"])))
    for entry in report["shrunk"]:
        lines.append("  - run %d [%s] %s" % (
            entry["run_index"], entry["status"], entry["lineage"]))
        for problem in entry["problems"][:3]:
            lines.append("      problem: %s" % problem)
        lines.append("      repro:  %s" % entry["repro"])
        lines.append("      replay: %s" % entry["replay"])
    return "\n".join(lines)


def _thin(points, limit):
    if len(points) <= limit:
        return points
    step = (len(points) - 1) / (limit - 1)
    return [points[round(index * step)] for index in range(limit)]


# ----------------------------------------------------------------- helpers

def _append_json_line(path, data):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(data, sort_keys=True) + "\n")
        handle.flush()


def _load_json_lines(path):
    rows = []
    if path is None or not os.path.exists(path):
        return rows
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except ValueError:
                continue   # torn final line from a killed session
    return rows
