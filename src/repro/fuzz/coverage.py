"""Coverage features from one run's already-emitted signals.

Nothing here adds instrumentation to the model: every feature is distilled
from telemetry the machine produces anyway — live metrics counters, the
trace recorder's event stream, and the forensic audit.  A feature is a
short ``|``-separated string; the fuzzer only ever compares and counts
them, so the exact spelling is the contract (changing it resets corpus
coverage, which is safe but wasteful).

Feature families:

``dk|STATE|KIND``
    A coherence handler ran for message KIND while the home directory
    held the line in STATE (``protocol.cover.*`` live counters) — the
    directory-state x message-kind product the protocol walks.
``pe|A>B`` / ``pe|A>B|x``
    A recovery agent entered phase B directly after phase A; ``|x`` marks
    the edge crossing a restart (epoch change).
``pi|A>B``
    Phase interleaving: consecutive phase entries machine-wide landed on
    *different* nodes (multi-agent overlap the per-node edges can't see).
``re|REASON`` / ``trig|REASON`` / ``shut|REASON``
    Episode restarts, begin-triggers and node shutdowns by reason.
``det|NAME``
    A failure detector fired (timeout, nak_overflow, truncated).
``bl|VERDICT|N|D``
    Forensic blast-radius shape: audit verdict, bucketed node count and
    bucketed causal-DAG depth below the injection.
``esc|CLASS``
    A containment violation of the given class (write-grant,
    invalidation, dirty-data) was observed.
``st|N`` / ``ab|N``
    Bucketed stray-message and drained-message (absorbed at a dead
    interface) totals.
``out|STATUS`` / ``ep|N`` / ``rs|N`` / ``skip|N``
    Run verdict, bucketed episode / restart / skipped-injection counts.

Buckets are ``int.bit_length`` — power-of-two resolution, like the
metrics histograms, so "3 episodes" and "4 episodes" are different
coverage but 40 and 50 are not.
"""

import hashlib


def bucket(value):
    """Power-of-two bucket of a non-negative count (0 -> 0, 5 -> 3)."""
    return max(0, int(value)).bit_length()


def feature_hash(feature):
    """Stable 64-bit hex id of a feature string (for compact artifacts)."""
    return hashlib.blake2b(feature.encode("utf-8"),
                           digest_size=8).hexdigest()


# ------------------------------------------------------------- extraction

def _protocol_features(metrics):
    features = set()
    for name, _node, value in metrics.counter_items("protocol.cover."):
        if value:
            state, kind = name[len("protocol.cover."):].split(".", 1)
            features.add("dk|%s|%s" % (state, kind))
    return features


def _phase_features(recorder):
    features = set()
    last_by_node = {}
    previous = None     # (node, phase) of the last enter machine-wide
    for event in recorder.events:
        if event.category == "phase" and event.name == "enter":
            phase = event.data.get("phase")
            epoch = event.data.get("epoch")
            prior = last_by_node.get(event.node)
            if prior is not None:
                mark = "|x" if prior[1] != epoch else ""
                features.add("pe|%s>%s%s" % (prior[0], phase, mark))
            last_by_node[event.node] = (phase, epoch)
            if previous is not None and previous[0] != event.node:
                features.add("pi|%s>%s" % (previous[1], phase))
            previous = (event.node, phase)
        elif event.category == "episode":
            reason = event.data.get("reason")
            if event.name == "restart":
                features.add("re|%s" % reason)
            elif event.name == "begin":
                features.add("trig|%s" % reason)
            elif event.name == "shutdown":
                features.add("shut|%s" % reason)
        elif event.category == "detect":
            features.add("det|%s" % event.name)
    return features


def _dag_depths(recorder):
    """Max causal-DAG depth below each fault.inject event, by eid."""
    from repro.telemetry.forensics import build_dag
    children, _dangling = build_dag(recorder.events)
    depths = {}
    for event in recorder.events:
        if event.category != "fault" or event.name != "inject":
            continue
        if event.eid is None:
            continue
        deepest = 0
        frontier = [(event.eid, 0)]
        seen = set()
        while frontier:
            eid, depth = frontier.pop()
            deepest = max(deepest, depth)
            for child in children.get(eid, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append((child, depth + 1))
        depths[event.eid] = deepest
    return depths


def _forensic_features(recorder):
    from repro.telemetry.forensics import analyze
    report = analyze(recorder)
    features = set()
    depths = _dag_depths(recorder)
    for fault in report.faults:
        features.add("bl|%s|%d|%d" % (
            fault.verdict, bucket(len(fault.blast_nodes)),
            bucket(depths.get(fault.inject_eid, 0))))
        for violation in fault.violations:
            reason = violation.get("reason", "")
            features.add("esc|%s" % reason.split(" ", 1)[0].rstrip(":"))
    return features, report.verdict


def run_coverage(machine, result, recorder):
    """The fuzzer's per-run payload: features + containment times.

    Called in the worker after :func:`run_schedule_experiment` returns;
    everything is read-only over state the run already produced.
    """
    features = set()
    telemetry = machine.telemetry
    if telemetry is not None and telemetry.metrics is not None:
        features |= _protocol_features(telemetry.metrics)
        stray = telemetry.metrics.counter_total("protocol.stray_messages")
        if stray:
            features.add("st|%d" % bucket(stray))
    escape = False
    if recorder is not None:
        features |= _phase_features(recorder)
        forensic, verdict = _forensic_features(recorder)
        features |= forensic
        escape = verdict == "escape"
    drained = sum(node.magic.stats.drained_messages
                  for node in machine.nodes)
    if drained:
        features.add("ab|%d" % bucket(drained))
    features.add("out|%s" % ("PASS" if result.passed else "FAIL"))
    features.add("ep|%d" % bucket(result.episodes))
    features.add("rs|%d" % bucket(result.restarts))
    features.add("skip|%d" % bucket(result.skipped_injections))
    containment = [report.total_duration for report in result.reports
                   if report.total_duration is not None]
    return {
        "features": sorted(features),
        "containment_ns": containment,
        "skipped_injections": result.skipped_injections,
        "escape": escape,
    }


# ------------------------------------------------------------ accumulation

class CoverageMap:
    """Global seen-set with per-feature hit counts.

    ``add`` returns the features a run contributed for the first time —
    the fuzzer's "interesting" signal — and ``rarity`` weights corpus
    energy toward schedules exercising the least-hit features.
    """

    def __init__(self):
        self.hits = {}

    def __len__(self):
        return len(self.hits)

    def __contains__(self, feature):
        return feature in self.hits

    def add(self, features):
        """Count one run's features; returns the sorted new ones."""
        new = []
        hits = self.hits
        for feature in features:
            count = hits.get(feature)
            if count is None:
                hits[feature] = 1
                new.append(feature)
            else:
                hits[feature] = count + 1
        return sorted(new)

    def rarity(self, feature):
        """1/hits — 1.0 for a feature seen once, ~0 for saturated ones."""
        count = self.hits.get(feature, 0)
        return 1.0 / count if count else 0.0

    def energy(self, features):
        """Scheduling weight of a corpus entry holding ``features``."""
        return 1.0 + sum(self.rarity(feature) for feature in features)

    def to_dict(self):
        return {"hits": dict(sorted(self.hits.items()))}

    @classmethod
    def from_dict(cls, data):
        coverage = cls()
        coverage.hits = dict(data.get("hits", {}))
        return coverage
