"""Small helpers for printing paper-style tables and figure series."""


def format_table(title, headers, rows):
    """Render a fixed-width table like the paper's (returns a string)."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = [title]
    lines.append("  ".join(
        str(header).ljust(widths[index])
        for index, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[index] for index in range(columns)))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(widths[index])
            for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title, x_label, y_labels, points):
    """Render a figure as a data-series table.

    ``points`` is a list of tuples ``(x, y1, y2, ...)`` matching
    ``y_labels``.
    """
    headers = [x_label] + list(y_labels)
    return format_table(title, headers, points)


def shape_check_monotone(values, tolerance=0.0):
    """True when the sequence is (approximately) non-decreasing.

    ``tolerance`` allows small dips as a fraction of the previous value —
    figure *shapes* are being checked, not exact numbers.
    """
    for previous, current in zip(values, values[1:]):
        if current < previous * (1.0 - tolerance):
            return False
    return True
