"""Result formatting for the paper-reproduction benches."""

from repro.analysis.tables import (
    format_series,
    format_table,
    shape_check_monotone,
)

__all__ = ["format_series", "format_table", "shape_check_monotone"]
