"""Applies fault specifications to a running machine.

Beyond the original apply-now semantics the injector supports the campaign
engine (:mod:`repro.campaign`):

* **hardening** — a fault aimed at an already-failed node/router/link is
  recorded as a no-op (with a warning) instead of corrupting machine state
  deep inside the simulation, so randomly generated multi-fault schedules
  can never crash a run;
* **transient models** — a transient link failure schedules its own heal, an
  intermittent link arms probabilistic drops (cleared when its dwell expires
  or when recovery begins — see :class:`~repro.faults.models.FaultSpec`),
  and a delayed wedge manifests after its dwell time;
* **phase-triggered injection** — :meth:`inject_on_phase` fires a fault the
  moment a recovery agent enters a given phase (P1–P4), the precise timing
  the paper's restart rule (§4.1) exists for;
* **schedules** — :meth:`inject_schedule` arms a whole
  :class:`~repro.campaign.schedule.FaultSchedule` at once.
"""

import warnings

from repro.faults.models import LINK_FAULT_TYPES, FaultType


class FaultInjector:
    """Injects faults into a :class:`~repro.core.machine.FlashMachine`."""

    def __init__(self, machine):
        self.machine = machine
        self.trace = None
        self.injected = []
        #: monotonic counter behind the forensic root-cause ids ("F0", ...)
        self._next_root = 0
        #: (time, spec) of faults skipped because the target had already
        #: failed — kept separate so experiments can account for them
        self.skipped = []
        #: optional callable run with the spec just before it is applied
        #: (the §5.2 harness snapshots its oracle here)
        self.pre_inject_hook = None
        #: phase-trigger listeners armed and not yet fired
        self.armed_phase_triggers = []

    # ------------------------------------------------------------- application

    def inject(self, spec):
        """Apply a fault right now; returns the spec for chaining.

        A fault whose target already failed is a no-op: it is recorded in
        :attr:`skipped` with a warning and the spec is still returned.
        """
        machine = self.machine
        fault_type = spec.fault_type

        if self._target_already_failed(spec):
            warnings.warn(
                "fault %s targets an already-failed component; "
                "recording as a no-op" % spec, stacklevel=2)
            self.skipped.append((machine.sim.now, spec))
            tr = self.trace
            if tr is not None:
                tr.emit("fault", "skip", fault=fault_type.value,
                        target=str(spec.target))
            return spec

        if self.pre_inject_hook is not None:
            self.pre_inject_hook(spec)

        # Mint the forensic root-cause id and record the injection *before*
        # applying the fault, so the components failed below can attribute
        # their very first casualties (truncations, buffer losses) to it.
        root = "F%d" % self._next_root
        self._next_root += 1
        inject_eid = None
        tr = self.trace
        if tr is not None:
            inject_eid = tr.emit("fault", "inject", fault=fault_type.value,
                                 target=str(spec.target), root=root,
                                 cell=self._fault_cell(spec))
        lineage = (root, inject_eid)
        machine.network.last_fault_lineage = lineage

        if fault_type == FaultType.NODE_FAILURE:
            self._taint_node(spec.target, lineage)
            machine.nodes[spec.target].fail()
        elif fault_type == FaultType.ROUTER_FAILURE:
            # A dead router takes its links with it; the attached node
            # becomes unreachable (and will shut itself down).
            machine.network.fail_router(spec.target, lineage=lineage)
        elif fault_type == FaultType.LINK_FAILURE:
            rid_a, rid_b = spec.target
            machine.network.fail_link(rid_a, rid_b, lineage=lineage)
        elif fault_type == FaultType.TRANSIENT_LINK_FAILURE:
            rid_a, rid_b = spec.target
            machine.network.fail_link(rid_a, rid_b, lineage=lineage)
            machine.sim.schedule(
                spec.dwell or 2_000_000.0,
                machine.network.heal_link, rid_a, rid_b)
        elif fault_type == FaultType.INTERMITTENT_LINK:
            self._arm_intermittent_link(spec, lineage)
        elif fault_type == FaultType.INFINITE_LOOP:
            self._taint_node(spec.target, lineage)
            machine.nodes[spec.target].wedge()
        elif fault_type == FaultType.DELAYED_WEDGE:
            # The firmware is considered rogue from injection: anything it
            # sends during the dwell descends from this fault (§3.3).
            self._taint_node(spec.target, lineage)
            machine.sim.schedule(
                spec.dwell or 2_000_000.0, self._wedge_if_alive, spec.target)
        elif fault_type == FaultType.FALSE_ALARM:
            # Route through MAGIC's trigger path so hooks observe it too.
            machine.nodes[spec.target].magic.trigger_recovery(
                "false_alarm", cause=inject_eid)
        else:
            raise ValueError("unknown fault type %r" % fault_type)

        self.injected.append((self.machine.sim.now, spec))
        return spec

    def _taint_node(self, node_id, lineage):
        """Mark a node's controller and interface as causally downstream of
        a fault: packets they originate or sink carry the lineage."""
        magic = self.machine.nodes[node_id].magic
        magic.fault_lineage = lineage
        magic.ni.fault_lineage = lineage

    def _fault_cell(self, spec):
        """Sorted node ids of the failure unit(s) this fault lands in."""
        manager = self.machine.recovery_manager
        if spec.fault_type in LINK_FAULT_TYPES:
            rid_a, rid_b = spec.target
            return sorted(manager.unit_of(rid_a) | manager.unit_of(rid_b))
        return sorted(manager.unit_of(spec.target))

    def _target_already_failed(self, spec):
        machine = self.machine
        fault_type = spec.fault_type
        if fault_type in LINK_FAULT_TYPES:
            rid_a, rid_b = spec.target
            link = machine.network.link_between(rid_a, rid_b)
            if link is None:
                raise ValueError(
                    "no link between %d and %d" % (rid_a, rid_b))
            if link.failed:
                return True
            # A link whose endpoint router died is already effectively
            # failed even if its own flag was never set.
            return (machine.network.router(rid_a).failed
                    or machine.network.router(rid_b).failed)
        if fault_type == FaultType.ROUTER_FAILURE:
            return machine.network.router(spec.target).failed
        node = machine.nodes[spec.target]
        return node.failed or node.magic.failed or node.magic.wedged

    # ----------------------------------------------------- transient plumbing

    def _wedge_if_alive(self, node_id):
        """Delayed-wedge manifestation: a node that failed some other way
        in the meantime cannot wedge anymore."""
        node = self.machine.nodes[node_id]
        if node.failed or node.magic.failed or node.magic.wedged:
            return
        node.wedge()

    def _arm_intermittent_link(self, spec, lineage=None):
        """Drops start now and stop at dwell expiry — or as soon as any
        recovery begins.  The quiet drain period lets the flaky connector
        settle; more importantly it keeps the §5.2 oracle sound: after the
        P4-entry snapshot nothing may be lost anymore (P4 flush writebacks
        travel the normal lanes this fault drops)."""
        machine = self.machine
        rid_a, rid_b = spec.target
        rate = spec.drop_rate if spec.drop_rate is not None else 0.3
        machine.network.set_link_drop(rid_a, rid_b, rate, machine.sim.rng)
        if lineage is not None:
            machine.network.link_between(rid_a, rid_b).fault_lineage = lineage

        def disarm(*_args):
            machine.network.set_link_drop(rid_a, rid_b, 0.0, None)
            listeners = machine.recovery_manager.phase_entry_listeners
            if on_phase_entry in listeners:
                listeners.remove(on_phase_entry)

        def on_phase_entry(phase, _node_id):
            if phase == "P1":
                disarm()

        machine.recovery_manager.phase_entry_listeners.append(on_phase_entry)
        machine.sim.schedule(spec.dwell or 2_000_000.0, disarm)

    # -------------------------------------------------------------- scheduling

    def inject_at(self, spec, time):
        """Schedule an injection at an absolute simulation time."""
        self.machine.sim.schedule_at(time, self.inject, spec)

    def inject_after(self, spec, delay):
        self.machine.sim.schedule(delay, self.inject, spec)

    def inject_on_phase(self, spec, phase, node_id=None):
        """Inject when a recovery agent enters ``phase`` ("P1".."P4").

        With ``node_id`` the trigger waits for that specific node's agent —
        e.g. kill a node just as *it* reaches P2, when every other agent
        already counts it as a dissemination partner.  The injection is
        scheduled one event later so it never runs inside the agent's own
        generator.  Returns the armed listener (a no-op if it never fires).
        """
        manager = self.machine.recovery_manager

        def listener(entered_phase, entering_node):
            if entered_phase != phase:
                return
            if node_id is not None and entering_node != node_id:
                return
            manager.phase_entry_listeners.remove(listener)
            self.armed_phase_triggers.remove(listener)
            self.machine.sim.schedule(0.0, self.inject, spec)

        manager.phase_entry_listeners.append(listener)
        self.armed_phase_triggers.append(listener)
        return listener

    def inject_schedule(self, schedule, base_time=None):
        """Arm every entry of a :class:`FaultSchedule`.

        Timed entries fire at ``base_time + entry.time`` (default base: now);
        phase-triggered entries fire at their phase entry.
        """
        base = self.machine.sim.now if base_time is None else base_time
        for entry in schedule.entries:
            if entry.phase is not None:
                self.inject_on_phase(entry.spec, entry.phase,
                                     node_id=entry.phase_node)
            else:
                self.machine.sim.schedule_at(
                    base + entry.time, self.inject, entry.spec)
