"""Applies fault specifications to a running machine."""

from repro.faults.models import FaultType


class FaultInjector:
    """Injects faults into a :class:`~repro.core.machine.FlashMachine`."""

    def __init__(self, machine):
        self.machine = machine
        self.injected = []

    def inject(self, spec):
        """Apply a fault right now; returns the spec for chaining."""
        machine = self.machine
        fault_type = spec.fault_type

        if fault_type == FaultType.NODE_FAILURE:
            machine.nodes[spec.target].fail()
        elif fault_type == FaultType.ROUTER_FAILURE:
            # A dead router takes its links with it; the attached node
            # becomes unreachable (and will shut itself down).
            machine.network.fail_router(spec.target)
        elif fault_type == FaultType.LINK_FAILURE:
            rid_a, rid_b = spec.target
            machine.network.fail_link(rid_a, rid_b)
        elif fault_type == FaultType.INFINITE_LOOP:
            machine.nodes[spec.target].wedge()
        elif fault_type == FaultType.FALSE_ALARM:
            # Route through MAGIC's trigger path so hooks observe it too.
            machine.nodes[spec.target].magic.trigger_recovery("false_alarm")
        else:
            raise ValueError("unknown fault type %r" % fault_type)

        self.injected.append((self.machine.sim.now, spec))
        return spec

    def inject_at(self, spec, time):
        """Schedule an injection at an absolute simulation time."""
        self.machine.sim.schedule_at(time, self.inject, spec)

    def inject_after(self, spec, delay):
        self.machine.sim.schedule(delay, self.inject, spec)
