"""Fault specifications (paper Table 5.2, extended with transient models).

The original Table 5.2 classes are permanent: a failed node, router or link
stays failed.  The campaign engine (:mod:`repro.campaign`) additionally
stresses recovery with *transient* and *delayed* faults:

* ``transient_link_failure`` — the link goes down, truncating the in-flight
  packet, then heals after a dwell time.  Recovery may or may not observe
  the link as down depending on when probing happens.
* ``intermittent_link`` — the link stays up but drops each crossing packet
  with some probability, modelling a flaky connector.
* ``delayed_wedge`` — the MAGIC firmware degrades and enters its infinite
  loop only after a dwell time, so the fault manifests long after the
  injection (possibly mid-recovery of an earlier fault).
"""

import dataclasses
import enum


class FaultType(enum.Enum):
    """The injected fault classes from Table 5.2 plus transient models."""

    NODE_FAILURE = "node_failure"       # MAGIC fails; router stays up;
                                        # packets to the node are discarded
    ROUTER_FAILURE = "router_failure"   # packets to the router are discarded
    LINK_FAILURE = "link_failure"       # packets crossing the link dropped;
                                        # the in-flight one is truncated
    INFINITE_LOOP = "infinite_loop"     # MAGIC stops accepting packets;
                                        # traffic backs up into the fabric
    FALSE_ALARM = "false_alarm"         # recovery triggered with no fault
    TRANSIENT_LINK_FAILURE = "transient_link_failure"  # link heals after
                                                       # a dwell time
    INTERMITTENT_LINK = "intermittent_link"  # link randomly drops packets
    DELAYED_WEDGE = "delayed_wedge"     # wedge manifests after a dwell time


#: the paper's original Table 5.2 fault classes (the evaluation tables
#: iterate these; the transient models below are campaign-engine additions)
TABLE_5_2_FAULT_TYPES = (
    FaultType.NODE_FAILURE,
    FaultType.ROUTER_FAILURE,
    FaultType.LINK_FAILURE,
    FaultType.INFINITE_LOOP,
    FaultType.FALSE_ALARM,
)

#: fault types whose target is an ``(a, b)`` router pair
LINK_FAULT_TYPES = frozenset({
    FaultType.LINK_FAILURE,
    FaultType.TRANSIENT_LINK_FAILURE,
    FaultType.INTERMITTENT_LINK,
})

#: fault types that eventually destroy the state of their target node
NODE_LOSS_FAULT_TYPES = frozenset({
    FaultType.NODE_FAILURE,
    FaultType.ROUTER_FAILURE,
    FaultType.INFINITE_LOOP,
    FaultType.DELAYED_WEDGE,
})


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``target`` is a node/router id for node, router, infinite-loop,
    false-alarm and delayed-wedge faults, and an ``(a, b)`` pair for link
    faults.  ``dwell`` (ns) is the heal delay of a transient link failure or
    the manifestation delay of a delayed wedge; ``drop_rate`` is the
    per-packet drop probability of an intermittent link.
    """

    fault_type: FaultType
    target: object
    dwell: float = None
    drop_rate: float = None

    @classmethod
    def node_failure(cls, node_id):
        return cls(FaultType.NODE_FAILURE, node_id)

    @classmethod
    def router_failure(cls, router_id):
        return cls(FaultType.ROUTER_FAILURE, router_id)

    @classmethod
    def link_failure(cls, node_a, node_b):
        return cls(FaultType.LINK_FAILURE, (node_a, node_b))

    @classmethod
    def infinite_loop(cls, node_id):
        return cls(FaultType.INFINITE_LOOP, node_id)

    @classmethod
    def false_alarm(cls, node_id):
        return cls(FaultType.FALSE_ALARM, node_id)

    @classmethod
    def transient_link_failure(cls, node_a, node_b, dwell=2_000_000.0):
        return cls(FaultType.TRANSIENT_LINK_FAILURE, (node_a, node_b),
                   dwell=dwell)

    @classmethod
    def intermittent_link(cls, node_a, node_b, drop_rate=0.3):
        return cls(FaultType.INTERMITTENT_LINK, (node_a, node_b),
                   drop_rate=drop_rate)

    @classmethod
    def delayed_wedge(cls, node_id, dwell=2_000_000.0):
        return cls(FaultType.DELAYED_WEDGE, node_id, dwell=dwell)

    @property
    def is_link_fault(self):
        return self.fault_type in LINK_FAULT_TYPES

    @property
    def destroys_node_state(self):
        """Will the target node's caches/memory be lost (ground truth)."""
        return self.fault_type in NODE_LOSS_FAULT_TYPES

    def excluded_targets(self, topology=None):
        """What this fault uses up, for :meth:`random`'s ``exclude`` set.

        With ``topology`` the set also covers *collateral* damage, so a
        later fault drawn against it can never be a no-op at injection
        time: a dead router takes its adjacent links down with it (the
        injector would skip a "new" fault on such a link), and any fault
        that destroys node state makes a later fault on that node
        redundant.  Without ``topology`` only the direct target is
        returned (backward-compatible).
        """
        if self.is_link_fault:
            return {frozenset(self.target)}
        used = {self.target}
        if (topology is not None
                and self.fault_type == FaultType.ROUTER_FAILURE):
            for _, (neighbor, _) in sorted(
                    topology.neighbors(self.target).items()):
                used.add(frozenset((self.target, neighbor)))
        return used

    @classmethod
    def random(cls, rng, topology, fault_type=None, exclude=None):
        """Draw a random fault of the given (or a random) type.

        ``exclude`` is a set of already-used targets — node ids and/or
        ``frozenset({a, b})`` link pairs (see :meth:`excluded_targets`) —
        that must not be drawn again, so multi-fault schedules never target
        something that is already failed.  Raises ``ValueError`` when every
        candidate target is excluded.
        """
        exclude = exclude or set()
        if fault_type is None:
            fault_type = rng.choice(list(FaultType))
        if fault_type in LINK_FAULT_TYPES:
            links = [link for link in topology.links()
                     if frozenset((link[0], link[2])) not in exclude]
            if not links:
                raise ValueError("every link is excluded")
            rid_a, _, rid_b, _ = rng.choice(links)
            if fault_type == FaultType.TRANSIENT_LINK_FAILURE:
                return cls.transient_link_failure(
                    rid_a, rid_b, dwell=rng.uniform(200_000.0, 5_000_000.0))
            if fault_type == FaultType.INTERMITTENT_LINK:
                return cls.intermittent_link(
                    rid_a, rid_b, drop_rate=rng.uniform(0.05, 0.5))
            return cls.link_failure(rid_a, rid_b)
        nodes = [n for n in range(topology.num_nodes) if n not in exclude]
        if not nodes:
            raise ValueError("every node is excluded")
        node_id = rng.choice(nodes)
        if fault_type == FaultType.DELAYED_WEDGE:
            return cls.delayed_wedge(
                node_id, dwell=rng.uniform(200_000.0, 5_000_000.0))
        return cls(fault_type, node_id)

    def to_dict(self):
        """JSON-friendly form (inverse of :meth:`from_dict`)."""
        data = {"fault_type": self.fault_type.value,
                "target": list(self.target) if self.is_link_fault
                else self.target}
        if self.dwell is not None:
            data["dwell"] = self.dwell
        if self.drop_rate is not None:
            data["drop_rate"] = self.drop_rate
        return data

    @classmethod
    def from_dict(cls, data):
        fault_type = FaultType(data["fault_type"])
        target = data["target"]
        if fault_type in LINK_FAULT_TYPES:
            target = tuple(target)
        return cls(fault_type, target,
                   dwell=data.get("dwell"),
                   drop_rate=data.get("drop_rate"))

    def __str__(self):
        extra = ""
        if self.dwell is not None:
            extra += ", dwell=%.0f" % self.dwell
        if self.drop_rate is not None:
            extra += ", drop=%.2f" % self.drop_rate
        return "%s(%s%s)" % (self.fault_type.value, self.target, extra)
