"""Fault specifications (paper Table 5.2)."""

import dataclasses
import enum


class FaultType(enum.Enum):
    """The injected fault classes from Table 5.2."""

    NODE_FAILURE = "node_failure"       # MAGIC fails; router stays up;
                                        # packets to the node are discarded
    ROUTER_FAILURE = "router_failure"   # packets to the router are discarded
    LINK_FAILURE = "link_failure"       # packets crossing the link dropped;
                                        # the in-flight one is truncated
    INFINITE_LOOP = "infinite_loop"     # MAGIC stops accepting packets;
                                        # traffic backs up into the fabric
    FALSE_ALARM = "false_alarm"         # recovery triggered with no fault


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``target`` is a node/router id for node, router, infinite-loop and
    false-alarm faults, and an ``(a, b)`` pair for link faults.
    """

    fault_type: FaultType
    target: object

    @classmethod
    def node_failure(cls, node_id):
        return cls(FaultType.NODE_FAILURE, node_id)

    @classmethod
    def router_failure(cls, router_id):
        return cls(FaultType.ROUTER_FAILURE, router_id)

    @classmethod
    def link_failure(cls, node_a, node_b):
        return cls(FaultType.LINK_FAILURE, (node_a, node_b))

    @classmethod
    def infinite_loop(cls, node_id):
        return cls(FaultType.INFINITE_LOOP, node_id)

    @classmethod
    def false_alarm(cls, node_id):
        return cls(FaultType.FALSE_ALARM, node_id)

    @classmethod
    def random(cls, rng, topology, fault_type=None):
        """Draw a random fault of the given (or a random) type."""
        if fault_type is None:
            fault_type = rng.choice(list(FaultType))
        if fault_type == FaultType.LINK_FAILURE:
            links = topology.links()
            rid_a, _, rid_b, _ = rng.choice(links)
            return cls.link_failure(rid_a, rid_b)
        node_id = rng.randrange(topology.num_nodes)
        return cls(fault_type, node_id)

    def __str__(self):
        return "%s(%s)" % (self.fault_type.value, self.target)
