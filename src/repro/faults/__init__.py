"""Fault models, injection, and the correctness oracle.

The five injected fault types match Table 5.2 of the paper: node failure,
router failure, link failure, MAGIC infinite loop, and false alarm.  The
:class:`~repro.faults.oracle.Oracle` plays the role of the paper's
simulator-side bookkeeping (§5.2): it tracks committed line values and, at
injection time, computes the set of lines *allowed* to become incoherent, so
experiments can verify the recovery algorithm marks neither more nor fewer
lines than necessary.
"""

from repro.faults.models import FaultSpec, FaultType
from repro.faults.injector import FaultInjector
from repro.faults.oracle import Oracle

__all__ = ["FaultInjector", "FaultSpec", "FaultType", "Oracle"]
