"""Ground-truth bookkeeping for validation experiments (paper §5.2).

The paper: *"We keep track in the simulator of the lines that may have
become incoherent, either because they were cached on a failed node or
because they were in a transitional state when we injected the fault.  This
allows us to verify that our recovery algorithm does not mark more lines as
incoherent than necessary."*

The oracle implements exactly that:

* it records the **committed value** of every line (updated on each store)
  — after recovery a surviving line must read this value, or bus-error as
  incoherent/inaccessible, and *nothing else* (a stale read would mean the
  directory scan failed to mark a lost line);
* at injection time :meth:`snapshot_at_injection` computes the
  **may-become-incoherent** set: lines owned exclusive by failed nodes,
  lines in a transient (locked) directory state, and lines whose exclusive
  owner no longer holds the data in cache (the grant or writeback is in
  flight);
* it collects the set of lines the recovery algorithm actually **marked**,
  so over-marking is detectable as ``marked - allowed``.
"""

from repro.common.types import DirState
from repro.node.magic import NullHooks
from repro.node.memory import initial_value


class Oracle(NullHooks):
    """Instrumentation hooks + allowed-outcome computation."""

    def __init__(self):
        self.committed = {}            # line -> last committed value
        self.outstanding_puts = {}     # line -> count of writebacks in flight
        self.marked_incoherent = set()
        self.recovery_triggers = []    # (node, reason) in trigger order
        self.bus_errors = []
        self.may_be_incoherent = None  # computed at injection
        self.inaccessible_homes = None
        #: ground-truth union of nodes lost so far across a (possibly
        #: multi-fault) schedule; grown via :meth:`note_failed_nodes`
        self.known_failed_nodes = set()

    # -- hooks ------------------------------------------------------------------

    def on_store(self, node_id, line_address, value):
        self.committed[line_address] = value

    def on_put_sent(self, node_id, line_address, value):
        self.outstanding_puts[line_address] = (
            self.outstanding_puts.get(line_address, 0) + 1)

    def on_put_absorbed(self, home_id, line_address):
        count = self.outstanding_puts.get(line_address, 0)
        if count <= 1:
            self.outstanding_puts.pop(line_address, None)
        else:
            self.outstanding_puts[line_address] = count - 1

    def on_line_marked_incoherent(self, home_id, line_address):
        self.marked_incoherent.add(line_address)

    def on_recovery_triggered(self, node_id, reason):
        self.recovery_triggers.append((node_id, reason))

    def on_bus_error(self, node_id, error):
        self.bus_errors.append((node_id, error))

    # -- queries ---------------------------------------------------------------

    def committed_value(self, line_address):
        return self.committed.get(line_address, initial_value(line_address))

    # -- injection snapshot --------------------------------------------------------

    def note_failed_nodes(self, failed_nodes):
        """Accumulate the ground-truth failed set across multiple faults.

        Each fault of a schedule destroys the state of zero or more nodes;
        the *union* is what every later snapshot must be computed against —
        a line owned by a node killed by fault #1 stays allowed-incoherent
        when fault #2 strikes during the recovery.  Returns the union.
        """
        self.known_failed_nodes |= set(failed_nodes)
        return set(self.known_failed_nodes)

    def snapshot_at_injection(self, machine, failed_nodes):
        """Compute allowed outcomes given the set of nodes that will fail.

        ``failed_nodes`` must include wedged (infinite-loop) nodes: the
        recovery algorithm stops them, losing their cache contents.
        """
        failed_nodes = set(failed_nodes)
        may_be_incoherent = set()
        inaccessible = set()

        for node in machine.nodes:
            directory = node.magic.directory
            home_failed = node.node_id in failed_nodes
            for line_address in directory.touched_lines():
                entry = directory.peek(line_address)
                if home_failed:
                    inaccessible.add(line_address)
                    continue
                if entry.state == DirState.LOCKED:
                    # Transient at injection: a message of this transaction
                    # may be lost anywhere in flight.
                    may_be_incoherent.add(line_address)
                elif entry.state == DirState.EXCLUSIVE:
                    owner = entry.owner
                    if owner is None or owner in failed_nodes:
                        # Ownerless-exclusive happens when the snapshot
                        # lands mid-P4 (a second fault during the directory
                        # scan): the entry is being rebuilt, so the line is
                        # in transition.
                        may_be_incoherent.add(line_address)
                    else:
                        owner_cache = machine.nodes[owner].cache
                        if not owner_cache.contains(line_address):
                            # Grant or writeback in flight.
                            may_be_incoherent.add(line_address)
                elif line_address in self.outstanding_puts:
                    may_be_incoherent.add(line_address)

        # Snapshots accumulate: the harness snapshots at injection and again
        # at P4 entry, when no further protocol transitions are possible —
        # the union covers transactions that went transient between the
        # injection and the moment every node entered recovery.
        if self.may_be_incoherent is None:
            self.may_be_incoherent = set()
            self.inaccessible_homes = set()
        self.may_be_incoherent |= may_be_incoherent
        self.inaccessible_homes |= inaccessible
        return may_be_incoherent, inaccessible

    # -- verdicts --------------------------------------------------------------------

    def overmarked_lines(self):
        """Lines marked incoherent that were not allowed to be (must be
        empty for a correct recovery implementation)."""
        if self.may_be_incoherent is None:
            return set(self.marked_incoherent)
        return self.marked_incoherent - self.may_be_incoherent
