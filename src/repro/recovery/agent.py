"""Per-node recovery agent: the four phases of the recovery algorithm.

One agent runs on every functioning node's processor, in uncached mode (all
work is charged at the 390 ns/instruction recovery-execution rate, §4.1).
The agent communicates over the dedicated recovery lanes via
:class:`~repro.recovery.comm.RecoveryComm`; deterministic graph computations
(BFT heights, routing tables, barrier trees) are delegated to the manager,
which memoizes them — every node computes the same function of the same
stabilized view, exactly as the paper requires.

Any communication failure (:class:`RecoveryCommError`) is interpreted as a
new hardware fault and escalates to a machine-wide restart of the recovery
algorithm (§4.1).
"""

from collections import deque

from repro.coherence.messages import MessageKind
from repro.interconnect.packet import ROUTER_SET_DISCARD, ROUTER_SET_TABLE
from repro.interconnect.router import LOCAL_PORT
from repro.recovery.comm import RecoveryComm, RecoveryCommError
from repro.recovery.view import LinkStatus, NodeStatus, SystemView


class RecoveryAgent:
    """The recovery code executing on one node."""

    def __init__(self, manager, node, epoch,
                 speculative_pings=True, bft_hints=True):
        self.manager = manager
        self.node = node
        self.magic = node.magic
        self.sim = manager.sim
        self.params = manager.params
        self.topology = manager.topology
        self.node_id = node.node_id
        self.epoch = epoch
        self.speculative_pings = speculative_pings
        self.bft_hints = bft_hints

        self.comm = RecoveryComm(self.sim, self.params, self.magic, epoch)
        self.view = SystemView()
        self.cwn_routes = {}     # alive neighbor -> source route (from P1)
        self.phase_marks = {}    # phase name -> (start, end)
        self.shutdown = False
        self.finished = False
        self.rounds_executed = 0
        self.used_hint = False
        self.proc = None

    def start(self):
        self.proc = self.sim.spawn(
            self._run(), name="recovery%d.e%d" % (self.node_id, self.epoch))
        return self.proc

    # -------------------------------------------------------------- utilities

    def _work(self, instructions):
        """Charge recovery-mode execution time (uncached, ~2.5 MIPS)."""
        return self.params.recovery_work(instructions)

    def _begin_phase(self, phase):
        self.phase_marks[phase] = (self.sim.now, None)
        self.manager.note_phase_entry(phase, self.node_id)

    def _end_phase(self, phase):
        begin, _ = self.phase_marks[phase]
        self.phase_marks[phase] = (begin, self.sim.now)
        self.manager.note_phase_exit(phase, self.node_id, self.epoch)

    # ------------------------------------------------------------------- main

    def _run(self):
        # Answer pings whenever they arrive, at any point in recovery: a
        # reply is the proof of life the pinger's cwn exploration needs.
        self.comm.auto_handlers[MessageKind.PING] = self.comm.answer_ping
        try:
            yield from self._phase1_initiation()
            yield from self._phase2_dissemination()
            if self._should_shutdown():
                self._do_shutdown("split-brain heuristic")
                return
            yield from self._phase3_interconnect()
            yield from self._phase4_coherence()
            self._complete()
        except RecoveryCommError as error:
            self.manager.request_restart(self.node_id, str(error))

    # ------------------------------------------------------ P1: initiation

    def _phase1_initiation(self):
        self._begin_phase("P1")
        # Vectoring through the forced cache error, starting the recovery
        # code from uncached space, and local diagnostics (§4.2).
        yield self._work(self.params.instr_enter_recovery)
        self.view.observe_node(self.node_id, NodeStatus.ALIVE)

        neighbors = sorted(self.topology.neighbors(self.node_id).items())

        if self.speculative_pings:
            # Optimization (§4.2): ping immediate neighbors before the cwn
            # exploration — a ~5x speedup of recovery triggering.
            for port, (neighbor, _) in neighbors:
                self.comm.send_ping_oneway(neighbor, [port])
                yield self._work(self.params.instr_ping_handle)

        # Iterative closest-working-neighbor exploration (§4.2): probe
        # farther and farther until every path ends at a failed link or a
        # functioning node.
        visited = {self.node_id}
        frontier = deque([(self.node_id, [])])
        while frontier:
            router, route = frontier.popleft()
            for port, (neighbor, _) in sorted(
                    self.topology.neighbors(router).items()):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                probe_route = route + [port]
                yield self._work(self.params.instr_probe_setup)
                router_id = yield from self.comm.probe_router(probe_route)
                if router_id is None:
                    # No probe reply: link (or the router behind it) failed.
                    self.view.observe_link(router, neighbor, LinkStatus.DOWN)
                    continue
                self.view.observe_link(router, neighbor, LinkStatus.UP)
                alive = yield from self.comm.ping_node(neighbor, probe_route)
                if alive:
                    self.view.observe_node(neighbor, NodeStatus.ALIVE)
                    self.cwn_routes[neighbor] = probe_route
                    # Do not explore beyond a functioning node: by
                    # definition it is a closest working neighbor.
                else:
                    # Router answers but the node controller does not: the
                    # node failed; keep exploring through its router.
                    self.view.observe_node(neighbor, NodeStatus.DEAD)
                    frontier.append((neighbor, probe_route))
        self._end_phase("P1")

    # -------------------------------------------------- P2: dissemination

    def _phase2_dissemination(self):
        self._begin_phase("P2")
        rounds_target = None
        hint = None
        round_no = 0
        partners = sorted(self.cwn_routes)
        safety_limit = 4 * self.topology.num_nodes + 8

        while partners:
            round_no += 1
            if round_no > safety_limit:
                raise RecoveryCommError(
                    "dissemination did not converge on node %d"
                    % self.node_id)
            entries = self.view.entry_count()
            wire = self.view.encode()
            for partner in partners:
                yield self._work(self.params.instr_send_per_entry * entries)
                self.comm.send(
                    MessageKind.DISSEMINATE,
                    {"round": round_no, "view": wire, "hint": hint,
                     "entry_count": entries},
                    self.cwn_routes[partner])

            changed = False
            deadline = self.sim.now + self.params.dissemination_timeout
            for partner in partners:
                def match(packet, partner=partner):
                    return (packet.kind == MessageKind.DISSEMINATE
                            and packet.payload.get("sender") == partner
                            and packet.payload.get("round") == round_no)

                packet = yield from self.comm.receive(match, deadline)
                if packet is None:
                    raise RecoveryCommError(
                        "dissemination round %d: no message from %d at %d"
                        % (round_no, partner, self.node_id))
                their_view = SystemView.decode(packet.payload["view"])
                yield self._work(
                    self.params.instr_merge_per_entry
                    * their_view.entry_count())
                if self.view.merge(their_view):
                    changed = True
                their_hint = packet.payload.get("hint")
                if their_hint is not None and hint is None:
                    hint = their_hint
                    self.used_hint = True

            tr = self.manager.trace
            if tr is not None:
                tr.emit("round", "done", node=self.node_id,
                        cause=self.manager.episode_cause, round=round_no,
                        epoch=self.epoch, changed=changed,
                        entries=self.view.entry_count())
            if not changed and rounds_target is None:
                # View stabilized: it is now the final global view (§4.3).
                if hint is not None and self.bft_hints:
                    # Deferred-BFT optimization: adopt the hint now; our own
                    # (identical) BFT computation is deferred to the end of
                    # the phase, where all deferred computations overlap.
                    rounds_target = hint
                else:
                    yield self._work(
                        self.params.instr_bft_per_node
                        * max(1, len(self.view.nodes)))
                    rounds_target = self._compute_rounds_target()
                    hint = rounds_target
            if rounds_target is not None and round_no >= rounds_target:
                break

        self.rounds_executed = round_no
        if self.used_hint and self.bft_hints:
            # The deferred BFT computations all run here, in parallel across
            # nodes (§4.3).
            yield self._work(
                self.params.instr_bft_per_node
                * max(1, len(self.view.nodes)))
        # From here on, any straggler's round messages are answered from the
        # final (converged) view by the comm layer's responder, so nodes
        # whose round counts end slightly apart never deadlock each other.
        self.comm.auto_handlers[MessageKind.DISSEMINATE] = self._echo_round
        for packet in self.comm.drain_pending(
                lambda p: p.kind == MessageKind.DISSEMINATE):
            self._echo_round(packet)
        self._end_phase("P2")

    def _compute_rounds_target(self):
        """2h termination bound (§4.3): h = height of the BFT rooted at a
        deterministically chosen functioning node."""
        height = self.manager.bft_height_for_view(self.view, self.node_id)
        return max(1, 2 * height)

    def _echo_round(self, packet):
        sender = packet.payload.get("sender")
        route = self.cwn_routes.get(sender)
        if route is None:
            return
        entries = self.view.entry_count()
        self.comm.send(
            MessageKind.DISSEMINATE,
            {"round": packet.payload.get("round"),
             "view": self.view.encode(),
             "hint": self.rounds_executed, "entry_count": entries},
            route)

    # --------------------------------------------------- split-brain check

    def _should_shutdown(self):
        """Shut down when most of the machine is unreachable (§4.2)."""
        alive = len(self.view.alive_nodes())
        return alive < self.params.shutdown_fraction * self.topology.num_nodes

    def _do_shutdown(self, why):
        self.shutdown = True
        self.finished = True
        self.manager.agent_shutdown(self, why)

    # ------------------------------------------- P3: interconnect recovery

    def _phase3_interconnect(self):
        self._begin_phase("P3")
        tree, routes = self.manager.barrier_tree_for_view(
            self.view, self.node_id)
        self._barrier_tree = tree
        self._barrier_routes = routes

        # Step 1: isolate the failed regions (§4.4).  Each node reprograms
        # its own router; the designated node also reprograms the routers of
        # failed/wedged nodes so their local ports discard backed-up traffic.
        yield self._work(self.params.instr_isolate_router)
        discard_ports = self._own_discard_ports()
        self.magic.router.set_discard_ports(discard_ports)
        if self.node_id == self._designated_node():
            yield from self._reprogram_orphan_routers(step="discard")

        # Step 2: drain.  Two-phase tau-quiet agreement over the barrier
        # tree (§4.4).
        agreement_round = 0
        while True:
            agreement_round += 1
            if agreement_round > 64:
                raise RecoveryCommError(
                    "drain agreement livelocked on node %d" % self.node_id)
            while True:
                quiet_for = self.sim.now - self.magic.last_normal_delivery
                if quiet_for >= self.params.drain_quiet_time:
                    break
                yield self.params.drain_quiet_time - quiet_for
            vote_time = self.sim.now
            yield self._work(self.params.instr_barrier_step)
            yield from self.comm.barrier(
                "drain.%d.a" % agreement_round, tree, routes)
            dirty = self.magic.last_normal_delivery > vote_time
            yield self._work(self.params.instr_barrier_step)
            any_dirty = yield from self.comm.barrier(
                "drain.%d.b" % agreement_round, tree, routes, value=dirty)
            if not any_dirty:
                break

        # Step 3: recompute and program deadlock-free routing tables (§4.4).
        yield self._work(
            self.params.instr_route_per_node
            * max(1, len(self.view.nodes)))
        tables = self.manager.routing_tables_for_view(self.view)
        own_table = tables.get(self.node_id, {})
        self.magic.router.program_table(own_table)
        if self.node_id == self._designated_node():
            yield from self._reprogram_orphan_routers(step="table",
                                                      tables=tables)

        yield self._work(self.params.instr_barrier_step)
        yield from self.comm.barrier("routes", tree, routes)
        self._end_phase("P3")

    def _own_discard_ports(self):
        ports = set()
        for port, (neighbor, _) in self.topology.neighbors(
                self.node_id).items():
            key = frozenset((self.node_id, neighbor))
            if self.view.links.get(key) == LinkStatus.DOWN:
                ports.add(port)
        return ports

    def _designated_node(self):
        """The node that reprograms routers of dead-controller nodes."""
        alive = self.view.alive_nodes()
        return min(alive) if alive else self.node_id

    def _reprogram_orphan_routers(self, step, tables=None):
        """Program the routers whose node controllers died but whose
        hardware still forwards (wedged/failed nodes, §4.4)."""
        component = self.manager.component_for_view(self.view)
        for dead in sorted(self.view.dead_nodes()):
            if dead not in component:
                continue   # unreachable: isolated by its neighbors already
            route = self.manager.source_route_for_view(
                self.view, self.node_id, dead)
            if route is None:
                continue
            yield self._work(self.params.instr_isolate_router)
            if step == "discard":
                # Discard traffic bound for the dead controller so backed-up
                # buffers drain (§3.1, §4.4).
                yield from self.comm.control_router(
                    ROUTER_SET_DISCARD, {"ports": [LOCAL_PORT]}, route)
            else:
                yield from self.comm.control_router(
                    ROUTER_SET_TABLE,
                    {"table": tables.get(dead, {})}, route)

    # ------------------------------------------- P4: coherence recovery

    def _phase4_coherence(self):
        self._begin_phase("P4")
        self.manager.notify_phase4_entry()
        tree = self._barrier_tree
        routes = self._barrier_routes
        alive = sorted(self.view.alive_nodes())

        # The interconnect is clean again: node controllers may generate
        # traffic (writebacks) on the normal lanes.
        self.magic.set_drain_mode(False)
        self.magic.update_node_map(alive)

        if self.manager.p4_skip_flush:
            # Reliable-interconnect variant (§6.3): no coherence message
            # can have been lost, so the flush is unnecessary — only the
            # directories are scanned and updated for the lines cached in
            # the failed portion of the machine.
            self.phase_marks["WB"] = (self.sim.now, self.sim.now)
            scanned, marked = self.magic.scan_directory_reliable(
                self.view.dead_nodes())
            yield scanned * self.params.dir_scan_line_time
            self.marked_incoherent = marked
        else:
            # Step 1: flush the processor cache; dirty lines travel home
            # (§4.5).
            flush_start = self.sim.now
            capacity, writebacks = self.magic.flush_caches_home()
            yield capacity * self.params.flush_line_time
            self.phase_marks["WB"] = (flush_start, self.sim.now)

            # Step 2: all-to-all barrier riding behind the writebacks on
            # the normal request lane (§4.5).
            for other in alive:
                if other != self.node_id:
                    self.magic.send_message(
                        other, MessageKind.FLUSH_DONE,
                        {"sender": self.node_id, "epoch": self.epoch})
            missing = {n for n in alive if n != self.node_id}
            deadline = self.sim.now + self.params.barrier_timeout
            while missing:
                def match(packet):
                    return (packet.kind == MessageKind.FLUSH_DONE
                            and packet.payload.get("sender") in missing)

                packet = yield from self.comm.receive(match, deadline)
                if packet is None:
                    raise RecoveryCommError(
                        "flush barrier: missing %s at node %d"
                        % (sorted(missing), self.node_id))
                missing.discard(packet.payload.get("sender"))

            # Step 3: scan the directory; lines still exclusive lost their
            # only valid copy and are marked incoherent; all else resets
            # (§4.5).
            scanned, marked = self.magic.scan_and_reset_directory()
            yield scanned * self.params.dir_scan_line_time
            self.marked_incoherent = marked

        # Step 4: final barrier; afterwards normal operation resumes (§4.5).
        yield self._work(self.params.instr_barrier_step)
        yield from self.comm.barrier("dirscan", tree, routes)

        # Apply the failure-unit rule (§3.3): if anything inside our unit
        # failed, this node stops too (clean cell shutdown).
        available = self.manager.available_nodes_for_view(self.view)
        if self.node_id not in available:
            self._end_phase("P4")
            self._do_shutdown("failure unit lost a component")
            return
        self.magic.update_node_map(available)
        self._end_phase("P4")

    def _complete(self):
        self.finished = True
        self.magic.exit_recovery()
        self.manager.agent_complete(self)
