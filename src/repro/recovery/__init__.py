"""The distributed hardware recovery algorithm (paper §4).

After a fault is detected, every functioning node runs a
:class:`~repro.recovery.agent.RecoveryAgent` through four phases:

* **P1 — recovery initiation** (§4.2): the processor is pulled out of normal
  execution, the node probes its neighborhood to determine its set of
  closest working neighbors (cwn), and a wave of pings drops every reachable
  functioning node into recovery;
* **P2 — information dissemination** (§4.3): lockstep rounds of state
  exchange with cwn members until every node knows the global system state;
  termination after ``2h`` rounds where ``h`` is the height of a BFT rooted
  at a deterministically chosen node;
* **P3 — interconnect recovery** (§4.4): isolate the failed regions, drain
  stalled traffic (two-phase tau-quiet agreement), recompute deadlock-free
  routing tables and reprogram the routers;
* **P4 — coherence protocol recovery** (§4.5): flush all caches home, an
  all-to-all barrier that rides behind the writebacks, then scan and reset
  the directories, marking lines whose only valid copy was lost as
  incoherent.

The :class:`~repro.recovery.manager.RecoveryManager` is the machine-level
harness that spawns agents when MAGIC detectors fire, memoizes the
deterministic graph computations all nodes share, and implements the
restart-on-new-fault rule.
"""

from repro.recovery.view import LinkStatus, NodeStatus, SystemView
from repro.recovery.comm import RecoveryComm
from repro.recovery.agent import RecoveryAgent
from repro.recovery.manager import RecoveryManager, RecoveryReport

__all__ = [
    "LinkStatus",
    "NodeStatus",
    "RecoveryAgent",
    "RecoveryComm",
    "RecoveryManager",
    "RecoveryReport",
    "SystemView",
]
