"""Machine-level recovery orchestration.

The manager plays three roles:

1. **Detector fan-in** — every MAGIC's ``trigger_recovery`` lands here; the
   first trigger of an episode starts an agent on that node, and the ping
   wave started by that agent drops the other nodes in (each ping arrival
   triggers this manager again for its node).
2. **Deterministic computation service** — BFT heights, barrier trees,
   routing tables, cwn graphs and source routes are pure functions of the
   stabilized view.  Every node computes them independently in the real
   system; here they are memoized per view signature so the simulation does
   the Python work once while still charging each node its simulated
   instruction cost.
3. **Restart rule** (§4.1) — when any agent hits a communication failure
   (a new fault during recovery), all agents are killed and recovery starts
   over with a higher epoch.

The manager also computes the post-recovery *available* set by applying the
failure-unit rule (§3.3): a unit with any failed component loses all of its
nodes.
"""

from repro.interconnect.routing import (
    bfs_tree,
    bft_height,
    compute_source_route,
    compute_up_down_tables,
    connected_component,
)
from repro.recovery.view import surviving_adjacency_from_view
from repro.sim import Event


class RecoveryReport:
    """What one recovery episode did, for experiments and figures."""

    def __init__(self, trigger_time, trigger_node, trigger_reason):
        self.trigger_time = trigger_time
        self.trigger_node = trigger_node
        self.trigger_reason = trigger_reason
        self.complete_time = None
        self.restarts = 0
        self.phase_ends = {}          # "P1"|"P2"|"P3"|"P4" -> absolute time
        self.phase_durations = {}     # per-phase max duration across nodes
        self.wb_duration = 0.0        # cache-flush part of P4 (Figure 5.6)
        self.shutdown_nodes = set()
        self.available_nodes = set()
        self.marked_incoherent = 0
        self.agent_rounds = {}        # node -> dissemination rounds executed

    @property
    def total_duration(self):
        if self.complete_time is None:
            return None
        return self.complete_time - self.trigger_time

    def phase_duration_from_trigger(self, phase):
        """Time from trigger until the last node finished ``phase``."""
        end = self.phase_ends.get(phase)
        return None if end is None else end - self.trigger_time

    def __repr__(self):
        return ("<RecoveryReport trigger=%s@%.0f total=%s restarts=%d "
                "marked=%d>" % (self.trigger_reason, self.trigger_time,
                                self.total_duration, self.restarts,
                                self.marked_incoherent))


class RecoveryManager:
    """Coordinates recovery agents for one machine."""

    def __init__(self, sim, params, topology, nodes, failure_units=None,
                 speculative_pings=True, bft_hints=True,
                 os_recovery_callback=None, p4_skip_flush=False):
        self.sim = sim
        self.params = params
        self.topology = topology
        self.nodes = nodes
        self.failure_units = [frozenset(unit) for unit in (
            failure_units or [{n.node_id} for n in nodes])]
        self.speculative_pings = speculative_pings
        self.bft_hints = bft_hints
        self.os_recovery_callback = os_recovery_callback
        self.p4_skip_flush = p4_skip_flush

        self.epoch = 0
        self.in_progress = False
        #: optional callable run once per episode when the first agent
        #: reaches P4 (after drain, before any flush) — the instant at which
        #: no further protocol transitions can occur.  The validation
        #: harness snapshots its oracle here (§5.2).
        self.phase4_hook = None
        self._phase4_hook_fired = False
        #: observation hooks called as ``listener(phase, node_id)`` whenever
        #: any agent enters a recovery phase ("P1".."P4").  Used by the
        #: campaign engine to inject faults at precise recovery moments;
        #: the recovery algorithm itself never depends on them.
        self.phase_entry_listeners = []
        self.trace = None            # telemetry recorder (None: disabled)
        #: eid of the current episode.begin event (forensics §11): phase,
        #: restart, shutdown and end events hang off it, and recovery
        #: traffic every participating MAGIC sends is stamped with it
        self.episode_cause = None
        self._phase_enter_eids = {}  # (node, phase, epoch) -> enter eid
        self.agents = {}             # node_id -> RecoveryAgent (this epoch)
        self.report = None
        self.reports = []
        self.recovery_done_events = {}   # node_id -> Event for processors
        self.episode_done = None         # machine-level completion event
        self._restarting = False
        self._cache = {}
        self._gated_survivors = []
        self._gated_report = None

        for node in nodes:
            node.magic.recovery_trigger = self.trigger
            node.magic.set_failure_unit(self.unit_of(node.node_id))

    # ----------------------------------------------------------------- units

    def unit_of(self, node_id):
        for unit in self.failure_units:
            if node_id in unit:
                return unit
        return frozenset({node_id})

    # ------------------------------------------------------------- triggering

    def trigger(self, node_id, reason):
        """A failure detector fired on ``node_id`` (§4.2)."""
        node = self.nodes[node_id]
        if node.failed or node.magic.failed:
            return
        if not self.in_progress:
            self.in_progress = True
            self.epoch += 1
            self._phase4_hook_fired = False
            self.report = RecoveryReport(self.sim.now, node_id, reason)
            self.episode_done = Event(self.sim, name="recovery.episode")
            tr = self.trace
            if tr is not None:
                self.episode_cause = tr.emit(
                    "episode", "begin", node=node_id,
                    cause=node.magic.last_trigger_cause,
                    trigger_node=node_id, reason=reason, epoch=self.epoch)
        if node_id in self.agents:
            return   # already recovering in this episode
        self._begin_node(node_id)

    def note_phase_entry(self, phase, node_id):
        """An agent began ``phase``; inform registered observers."""
        tr = self.trace
        if tr is not None:
            eid = tr.emit("phase", "enter", node=node_id,
                          cause=self.episode_cause, phase=phase,
                          epoch=self.epoch)
            self._phase_enter_eids[(node_id, phase, self.epoch)] = eid
        for listener in list(self.phase_entry_listeners):
            listener(phase, node_id)

    def note_phase_exit(self, phase, node_id, epoch):
        """An agent finished ``phase`` (telemetry only)."""
        tr = self.trace
        if tr is not None:
            enter_eid = self._phase_enter_eids.pop(
                (node_id, phase, epoch), None)
            tr.emit("phase", "exit", node=node_id,
                    cause=enter_eid if enter_eid is not None
                    else self.episode_cause,
                    phase=phase, epoch=epoch)

    def notify_phase4_entry(self):
        """First agent reached P4 (post-drain): fire the episode hook."""
        if self._phase4_hook_fired or self.phase4_hook is None:
            return
        self._phase4_hook_fired = True
        self.phase4_hook()

    def _begin_node(self, node_id):
        node = self.nodes[node_id]
        magic = node.magic
        magic.enter_recovery()
        magic.recovery_cause = (
            None if self.episode_cause is None
            else (None, self.episode_cause))
        magic.set_drain_mode(True)
        magic.last_normal_delivery = self.sim.now
        event = self.recovery_done_events.get(node_id)
        if event is None or event.triggered:
            event = Event(self.sim, name="recdone%d" % node_id)
            self.recovery_done_events[node_id] = event
        node.processor.recovery_done = event
        node.processor.interrupt_for_recovery()

        from repro.recovery.agent import RecoveryAgent
        agent = RecoveryAgent(
            self, node, self.epoch,
            speculative_pings=self.speculative_pings,
            bft_hints=self.bft_hints)
        self.agents[node_id] = agent
        agent.start()

    # ---------------------------------------------------------------- restart

    def request_restart(self, node_id, why):
        """An agent saw a new fault mid-recovery: restart everyone (§4.1)."""
        if self._restarting or not self.in_progress:
            return
        self._restarting = True
        self.report.restarts += 1
        tr = self.trace
        if tr is not None:
            tr.emit("episode", "restart", node=node_id,
                    cause=self.episode_cause, reason=why,
                    epoch=self.epoch + 1, restarts=self.report.restarts)
        if self.report.restarts > 8:
            raise RuntimeError(
                "recovery restarted too many times (last: %s)" % why)
        participants = [nid for nid, agent in self.agents.items()
                        if not agent.shutdown]
        stale_agents = list(self.agents.values())
        self.agents = {}
        self.epoch += 1
        self._cache.clear()
        # Kill the old agents from a fresh event: the requester is still
        # executing its own generator right now and cannot be closed from
        # inside itself.
        self.sim.schedule(0.0, self._restart_begin, participants,
                          stale_agents)

    def _restart_begin(self, participants, stale_agents):
        for agent in stale_agents:
            if agent.proc is not None and agent.proc.alive:
                agent.proc.kill()
        self._restarting = False
        # Re-enter recovery on every node that was participating and is
        # still functional; the ping waves re-discover everyone else.
        for node_id in participants:
            node = self.nodes[node_id]
            if node.failed or node.magic.failed:
                continue
            self._begin_node(node_id)

    # -------------------------------------------------------------- completion

    def agent_complete(self, agent):
        self._merge_report(agent)
        self._check_episode_done()

    def agent_shutdown(self, agent, why):
        """An agent decided its node must stop (split-brain or broken
        failure unit)."""
        self._merge_report(agent)
        self.report.shutdown_nodes.add(agent.node_id)
        tr = self.trace
        if tr is not None:
            tr.emit("episode", "shutdown", node=agent.node_id,
                    cause=self.episode_cause, reason=why, epoch=self.epoch)
        node = self.nodes[agent.node_id]
        node.fail()   # clean stop: the node no longer participates
        self._check_episode_done()

    def _merge_report(self, agent):
        report = self.report
        for phase, (begin, end) in agent.phase_marks.items():
            if end is None:
                continue
            current = report.phase_ends.get(phase)
            if current is None or end > current:
                report.phase_ends[phase] = end
            duration = end - begin
            if duration > report.phase_durations.get(phase, 0.0):
                report.phase_durations[phase] = duration
        wb = agent.phase_marks.get("WB")
        if wb and wb[1] is not None:
            report.wb_duration = max(report.wb_duration, wb[1] - wb[0])
        report.marked_incoherent += getattr(agent, "marked_incoherent", 0)
        report.agent_rounds[agent.node_id] = agent.rounds_executed

    def _check_episode_done(self):
        if self._restarting or not self.in_progress:
            return
        if any(not agent.finished for agent in self.agents.values()):
            return
        # Episode complete.
        self.in_progress = False
        report = self.report
        report.complete_time = self.sim.now
        survivors = [nid for nid, agent in self.agents.items()
                     if not agent.shutdown]
        report.available_nodes = set(survivors)
        self.reports.append(report)
        self.agents = {}
        tr = self.trace
        if tr is not None:
            tr.emit("episode", "end", cause=self.episode_cause,
                    epoch=self.epoch, available=len(survivors),
                    marked=report.marked_incoherent,
                    restarts=report.restarts)
        if self.episode_done is not None and not self.episode_done.triggered:
            self.episode_done.trigger(report)
        if self.os_recovery_callback is not None:
            # The node controllers raise an interrupt informing the OS that
            # hardware recovery has run; user-level execution resumes only
            # after the OS calls release_processors() (§4.6).
            self._gated_survivors = list(survivors)
            self._gated_report = report
            self.os_recovery_callback(report)
        else:
            self._release(survivors, report)

    def release_processors(self):
        """OS recovery finished: let user-level execution continue (§4.6)."""
        self._release(self._gated_survivors, self._gated_report)
        self._gated_survivors = []

    def _release(self, survivors, report):
        for node_id in survivors:
            event = self.recovery_done_events.get(node_id)
            if event is not None and not event.triggered:
                event.trigger(report)

    # --------------------------------------- deterministic view computations

    def _view_key(self, view):
        return view.signature()

    def _memo(self, name, view, builder):
        key = (name, self._view_key(view))
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def adjacency_for_view(self, view):
        return self._memo("adj", view, lambda: surviving_adjacency_from_view(
            self.topology, view))

    def component_for_view(self, view):
        def build():
            adjacency = self.adjacency_for_view(view)
            alive = view.alive_nodes()
            root = min(alive) if alive else 0
            return connected_component(adjacency, root)
        return self._memo("component", view, build)

    def restricted_adjacency_for_view(self, view):
        def build():
            adjacency = self.adjacency_for_view(view)
            component = self.component_for_view(view)
            return {rid: [e for e in entries if e[1] in component]
                    for rid, entries in adjacency.items()
                    if rid in component}
        return self._memo("radj", view, build)

    def bft_height_for_view(self, view, _node_id):
        """Height of the BFT rooted at the deterministically chosen node
        (the lowest-id functioning node, §4.3)."""
        def build():
            adjacency = self.restricted_adjacency_for_view(view)
            alive = sorted(view.alive_nodes())
            root = alive[0] if alive else min(adjacency)
            return bft_height(adjacency, root)
        return self._memo("bft_height", view, build)

    def cwn_graph_for_view(self, view):
        """The cwn graph: edges between functioning nodes connected by a
        path through failed-controller routers only."""
        def build():
            adjacency = self.restricted_adjacency_for_view(view)
            alive = view.alive_nodes() & set(adjacency)
            edges = {node: set() for node in alive}
            for start in alive:
                frontier = [start]
                seen = {start}
                while frontier:
                    rid = frontier.pop()
                    for _, nbr, _ in adjacency[rid]:
                        if nbr in seen:
                            continue
                        seen.add(nbr)
                        if nbr in alive:
                            edges[start].add(nbr)
                        else:
                            frontier.append(nbr)
            return edges
        return self._memo("cwn", view, build)

    def barrier_tree_for_view(self, view, node_id):
        """(parent, children) of ``node_id`` in the BFS tree of the cwn
        graph, plus source routes to the tree neighbors."""
        def build():
            edges = self.cwn_graph_for_view(view)
            adjacency = {
                node: [(None, nbr, None) for nbr in sorted(nbrs)]
                for node, nbrs in edges.items()
            }
            root = min(adjacency) if adjacency else None
            if root is None:
                return {}
            parent, _ = bfs_tree(adjacency, root)
            children = {node: [] for node in parent}
            for node, par in parent.items():
                if par is not None:
                    children[par].append(node)
            return {node: (parent[node], children[node]) for node in parent}
        trees = self._memo("barrier_tree", view, build)
        tree = trees.get(node_id, (None, []))
        parent, children = tree
        routes = {}
        for neighbor in ([parent] if parent is not None else []) + list(children):
            routes[neighbor] = self.source_route_for_view(
                view, node_id, neighbor)
        return tree, routes

    def routing_tables_for_view(self, view):
        def build():
            adjacency = self.restricted_adjacency_for_view(view)
            dead = view.dead_nodes()
            return compute_up_down_tables(
                adjacency, dead_node_controllers=dead)
        return self._memo("tables", view, build)

    def source_route_for_view(self, view, src, dst):
        key = ("route", self._view_key(view), src, dst)
        if key not in self._cache:
            adjacency = self.restricted_adjacency_for_view(view)
            self._cache[key] = compute_source_route(adjacency, src, dst)
        return self._cache[key]

    def available_nodes_for_view(self, view):
        """Apply the failure-unit rule: alive nodes in fully intact units."""
        def build():
            alive = view.alive_nodes()
            down = view.down_links()
            available = set()
            for unit in self.failure_units:
                if not unit <= alive:
                    continue
                intact = True
                for member in unit:
                    for _, nbr, _ in _topology_entries(self.topology, member):
                        if nbr in unit and frozenset((member, nbr)) in down:
                            intact = False
                if intact:
                    available |= unit
            return available & alive
        return self._memo("available", view, build)


def _topology_entries(topology, node_id):
    return [(port, nbr, nbr_port)
            for port, (nbr, nbr_port) in topology.neighbors(node_id).items()]
