"""LState/NState: a node's view of the system, and the merge operation.

During dissemination (paper §4.3) nodes repeatedly exchange and merge their
views.  Merging must be commutative, associative and idempotent so that the
order in which information propagates cannot matter; property tests verify
this.

Status semantics:

* a node is ALIVE when *someone* received a ping reply from it (proof that
  its processor entered recovery); DEAD when someone's pings timed out with
  the router answering.  ALIVE wins a merge — a reply is proof of life,
  whereas a timeout is circumstantial.
* a link is UP when a probe crossed it; DOWN when a probe timed out.  DOWN
  wins a merge — links do not heal, so the most pessimistic observation is
  the most recent truth.
"""

import enum


class NodeStatus(enum.Enum):
    ALIVE = "alive"
    DEAD = "dead"


class LinkStatus(enum.Enum):
    UP = "up"
    DOWN = "down"


class SystemView:
    """One node's knowledge of node and link health."""

    __slots__ = ("nodes", "links")

    def __init__(self, nodes=None, links=None):
        self.nodes = dict(nodes or {})    # node_id -> NodeStatus
        self.links = dict(links or {})    # frozenset({a, b}) -> LinkStatus

    def observe_node(self, node_id, status):
        current = self.nodes.get(node_id)
        if current == NodeStatus.ALIVE:
            return
        self.nodes[node_id] = status

    def observe_link(self, a, b, status):
        key = frozenset((a, b))
        current = self.links.get(key)
        if current == LinkStatus.DOWN:
            return
        self.links[key] = status

    def merge(self, other):
        """Merge another view in place; returns True if anything changed."""
        changed = False
        for node_id, status in other.nodes.items():
            current = self.nodes.get(node_id)
            merged = _merge_node(current, status)
            if merged != current:
                self.nodes[node_id] = merged
                changed = True
        for key, status in other.links.items():
            current = self.links.get(key)
            merged = _merge_link(current, status)
            if merged != current:
                self.links[key] = merged
                changed = True
        return changed

    # -- queries ---------------------------------------------------------------

    def alive_nodes(self):
        return {n for n, s in self.nodes.items() if s == NodeStatus.ALIVE}

    def dead_nodes(self):
        return {n for n, s in self.nodes.items() if s == NodeStatus.DEAD}

    def down_links(self):
        return {key for key, s in self.links.items()
                if s == LinkStatus.DOWN}

    def entry_count(self):
        """Size of the view (drives message size and merge cost)."""
        return len(self.nodes) + len(self.links)

    # -- wire format --------------------------------------------------------------

    def encode(self):
        return {
            "nodes": {n: s.value for n, s in self.nodes.items()},
            "links": [(tuple(sorted(key)), s.value)
                      for key, s in self.links.items()],
        }

    @classmethod
    def decode(cls, wire):
        view = cls()
        view.nodes = {n: NodeStatus(s) for n, s in wire["nodes"].items()}
        view.links = {frozenset(pair): LinkStatus(s)
                      for pair, s in wire["links"]}
        return view

    def copy(self):
        return SystemView(self.nodes, self.links)

    def signature(self):
        """Hashable digest used to detect stabilization across rounds."""
        return (frozenset(self.nodes.items()),
                frozenset(self.links.items()))

    def __eq__(self, other):
        return (isinstance(other, SystemView)
                and self.nodes == other.nodes and self.links == other.links)

    def __repr__(self):
        return "<SystemView alive=%s dead=%s down_links=%d>" % (
            sorted(self.alive_nodes()), sorted(self.dead_nodes()),
            len(self.down_links()))


def _merge_node(current, incoming):
    if current is None:
        return incoming
    if NodeStatus.ALIVE in (current, incoming):
        return NodeStatus.ALIVE
    return current


def _merge_link(current, incoming):
    if current is None:
        return incoming
    if LinkStatus.DOWN in (current, incoming):
        return LinkStatus.DOWN
    return current


def surviving_adjacency_from_view(topology, view):
    """Router-level adjacency implied by a (stabilized) view.

    Routers of DEAD nodes still forward (the controller died, not the
    router) *unless* every link to them is down — a fully disconnected or
    failed router looks identical from outside, and the distinction is
    irrelevant for routing.  Links not present in the view default to UP:
    probes only record what they saw, and an unprobed link lies beyond a
    failure frontier (its status cannot matter for the surviving region).
    """
    from repro.interconnect.routing import surviving_adjacency

    return surviving_adjacency(
        topology, dead_nodes=(), dead_links=view.down_links())
