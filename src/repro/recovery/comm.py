"""Recovery-time communication services for one node's agent.

All recovery traffic is source-routed on the dedicated recovery lanes
(paper §4.1).  This module provides:

* a buffered receive loop over MAGIC's recovery inbox (messages for later
  phases can arrive early — e.g. a fast neighbor's barrier packet while we
  are still disseminating — and must be retained);
* router probes and node pings with retry/timeout policies (§4.2);
* router control commands (set-discard / set-table) with acks (§4.4);
* a fault-tolerant combining-tree barrier over the BFT built during
  dissemination (§4.4, citing Goodman et al. [6]), with an optional value
  reduction used by the two-phase drain agreement.

A timeout on any of these surfaces as :class:`RecoveryCommError`, which the
agent treats as a new fault: the recovery algorithm restarts (§4.1).
"""

import itertools

from repro.common.errors import ReproError
from repro.common.types import Lane
from repro.coherence.messages import MessageKind
from repro.interconnect.packet import (
    Packet,
    ROUTER_CTRL_ACK,
    ROUTER_PROBE,
    ROUTER_PROBE_REPLY,
    ROUTER_SET_DISCARD,
    ROUTER_SET_TABLE,
)

_ctrl_keys = itertools.count(1)


class RecoveryCommError(ReproError):
    """A recovery-time communication step failed (likely a new fault)."""


class RecoveryComm:
    """Source-routed messaging for a recovery agent."""

    def __init__(self, sim, params, magic, epoch):
        self.sim = sim
        self.params = params
        self.magic = magic
        self.node_id = magic.node_id
        self.epoch = epoch
        self._pending = []    # packets received but not yet matched
        #: kind -> handler(packet); matching packets are consumed on sight
        #: (used to answer pings at any time and to echo dissemination
        #: rounds after this node's own rounds have finished)
        self.auto_handlers = {}

    # ------------------------------------------------------------ raw send

    def send(self, kind, payload, source_route, lane=Lane.RECOVERY_A):
        body = dict(payload)
        body.setdefault("epoch", self.epoch)
        body.setdefault("sender", self.node_id)
        packet = Packet(
            src=self.node_id, dst=None, lane=lane, kind=kind,
            payload=body, flits=self._flits_of(body),
            source_route=source_route)
        packet.root_cause, packet.cause_eid = self.magic.current_lineage()
        self.magic.ni.send(packet)

    def _flits_of(self, payload):
        entries = payload.get("entry_count", 0)
        # header + ~8 bytes per view entry
        return 2 + (entries * 8 + self.params.flit_bytes - 1) // self.params.flit_bytes

    # ------------------------------------------------------------- receive

    def _matches_epoch(self, packet):
        payload = packet.payload if isinstance(packet.payload, dict) else {}
        epoch = payload.get("epoch")
        return epoch is None or epoch == self.epoch

    def receive(self, match, deadline):
        """Yield-driven receive of the first packet satisfying ``match``.

        Non-matching packets are buffered for later receives.  Returns the
        packet, or None when ``deadline`` (absolute sim time) passes.
        """
        self._run_auto_on_pending()
        for index, packet in enumerate(self._pending):
            if match(packet):
                return self._pending.pop(index)
        inbox = self.magic.recovery_inbox
        while True:
            packet = inbox.try_get()
            if packet is None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    return None
                # watch() is non-consuming, so poking it on timeout cannot
                # steal a packet from a later receive.
                watch = inbox.watch()
                timer = self.sim.schedule(remaining, _poke, watch)
                yield watch
                timer.cancel()
                continue
            if not self._matches_epoch(packet):
                continue   # stale traffic from a restarted recovery
            if self._run_auto(packet):
                continue
            if match(packet):
                return packet
            self._pending.append(packet)

    def _run_auto(self, packet):
        handler = self.auto_handlers.get(packet.kind)
        if handler is None:
            return False
        handler(packet)
        return True

    def _run_auto_on_pending(self):
        if not self.auto_handlers:
            return
        remaining = []
        for packet in self._pending:
            if not self._run_auto(packet):
                remaining.append(packet)
        self._pending = remaining

    def drain_pending(self, match):
        """Pop all already-buffered packets satisfying ``match``."""
        taken = [p for p in self._pending if match(p)]
        self._pending = [p for p in self._pending if not match(p)]
        return taken

    # ------------------------------------------------------------- probing

    def probe_router(self, source_route):
        """Probe the router at the end of ``source_route``.

        Returns the router id, or None after retries exhaust (§4.2).
        """
        for _ in range(self.params.probe_retries):
            probe = Packet(
                src=self.node_id, dst=None, lane=Lane.RECOVERY_A,
                kind=ROUTER_PROBE, payload={"epoch": self.epoch},
                flits=2, source_route=list(source_route))
            uid = probe.uid
            probe.root_cause, probe.cause_eid = self.magic.current_lineage()
            self.magic.ni.send(probe)
            deadline = self.sim.now + self.params.probe_timeout

            def match(packet, uid=uid):
                return (packet.kind == ROUTER_PROBE_REPLY
                        and packet.payload.get("probe_uid") == uid)

            reply = yield from self.receive(match, deadline)
            if reply is not None:
                return reply.payload["router_id"]
        return None

    def ping_node(self, target, source_route, deadline=None):
        """Ping a node controller until its recovery code replies (§4.2).

        Returns True if the node proved alive before the ping deadline.
        """
        if deadline is None:
            deadline = self.sim.now + self.params.ping_deadline
        while self.sim.now < deadline:
            self.send(MessageKind.PING,
                      {"target": target, "return_to": self.node_id},
                      source_route)
            wait_until = min(deadline, self.sim.now + self.params.ping_interval)

            def match(packet):
                return (packet.kind == MessageKind.PING_REPLY
                        and packet.payload.get("sender") == target)

            reply = yield from self.receive(match, wait_until)
            if reply is not None:
                return True
        return False

    def send_ping_oneway(self, target, source_route):
        """Fire-and-forget ping (the speculative-ping optimization, §4.2)."""
        self.send(MessageKind.PING,
                  {"target": target, "return_to": self.node_id},
                  source_route)

    def answer_ping(self, ping_packet):
        """Reply to a ping, proving this node's processor runs recovery."""
        route = list(reversed(ping_packet.trace_ports))
        self.send(MessageKind.PING_REPLY, {}, route, lane=Lane.RECOVERY_B)

    # -------------------------------------------------------- router control

    def control_router(self, command, payload, source_route):
        """Send a set-discard/set-table command; waits for the ack.

        Raises :class:`RecoveryCommError` when the router never answers.
        """
        assert command in (ROUTER_SET_DISCARD, ROUTER_SET_TABLE)
        key = next(_ctrl_keys)
        body = dict(payload)
        body["ctrl_key"] = key
        body["epoch"] = self.epoch
        for _ in range(self.params.ctrl_retries):
            packet = Packet(
                src=self.node_id, dst=None, lane=Lane.RECOVERY_A,
                kind=command, payload=dict(body), flits=4,
                source_route=list(source_route))
            packet.root_cause, packet.cause_eid = (
                self.magic.current_lineage())
            self.magic.ni.send(packet)
            deadline = self.sim.now + self.params.ctrl_timeout

            def match(reply):
                return (reply.kind == ROUTER_CTRL_ACK
                        and reply.payload.get("ctrl_key") == key)

            reply = yield from self.receive(match, deadline)
            if reply is not None:
                return
        raise RecoveryCommError(
            "router control %s from node %d got no ack"
            % (command, self.node_id))

    # ---------------------------------------------------------------- barrier

    def barrier(self, name, tree, routes, value=False, combine=None):
        """Fault-tolerant combining-tree barrier (§4.4).

        ``tree`` is ``(parent, children)`` for this node over the cwn graph;
        ``routes[n]`` is the source route to cwn member ``n``.  ``value`` is
        this node's contribution; ``combine`` (default OR) reduces values up
        the tree.  Returns the reduced value broadcast down from the root.

        Raises :class:`RecoveryCommError` if a partner never arrives — a new
        fault happened, and recovery must restart.
        """
        parent, children = tree
        combine = combine or (lambda a, b: a or b)
        reduced = value
        deadline = self.sim.now + self.params.barrier_timeout

        for child in sorted(children):
            def match(packet, child=child):
                return (packet.kind == MessageKind.BARRIER_UP
                        and packet.payload.get("barrier") == name
                        and packet.payload.get("sender") == child)

            packet = yield from self.receive(match, deadline)
            if packet is None:
                raise RecoveryCommError(
                    "barrier %r: child %d missing at node %d"
                    % (name, child, self.node_id))
            reduced = combine(reduced, packet.payload.get("value"))

        if parent is not None:
            self.send(MessageKind.BARRIER_UP,
                      {"barrier": name, "value": reduced}, routes[parent])

            def match_down(packet):
                return (packet.kind == MessageKind.BARRIER_DOWN
                        and packet.payload.get("barrier") == name)

            packet = yield from self.receive(match_down, deadline)
            if packet is None:
                raise RecoveryCommError(
                    "barrier %r: release never reached node %d"
                    % (name, self.node_id))
            reduced = packet.payload.get("value")

        for child in sorted(children):
            self.send(MessageKind.BARRIER_DOWN,
                      {"barrier": name, "value": reduced}, routes[child])
        tr = self.magic.trace
        if tr is not None:
            rc = self.magic.recovery_cause
            tr.emit("barrier", "done", node=self.node_id,
                    cause=None if rc is None else rc[1], barrier=name,
                    epoch=self.epoch, value=reduced)
        return reduced


class _Timeout:
    pass


_TIMEOUT = _Timeout()


def _poke(event):
    """Fire a channel-get event with the timeout sentinel."""
    if not event.triggered:
        event.trigger(_TIMEOUT)
