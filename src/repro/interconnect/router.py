"""SPIDER-like router with per-lane input buffering and credit back-pressure.

Each router runs one forwarding process.  Input buffers exist per
``(port, lane)``; a packet is forwarded when its output port is idle and the
downstream buffer has a free slot (credit reserved at transfer start).  A
full downstream buffer therefore backs traffic up toward the sources, which
is exactly the congestion mechanism that makes a wedged node controller
dangerous (paper §3.1).

Recovery lanes get two special behaviours from the hardware (paper §4.1):

* packets on them may be *source-routed* (the route is a list of output
  ports consumed hop by hop);
* a recovery-lane packet that has been stalled at a router for longer than
  ``recovery_stall_discard`` is discarded, so the recovery lanes can never
  stay congested.

Routers also answer :data:`~repro.interconnect.packet.ROUTER_PROBE` packets
in hardware (used by recovery initiation to map the neighborhood) and
support *discard ports* (used during interconnect recovery to isolate failed
regions and let stalled traffic drain).
"""

from collections import deque

from repro.common.types import Lane
from repro.interconnect.packet import (
    Packet,
    ROUTER_CTRL_ACK,
    ROUTER_PROBE,
    ROUTER_PROBE_REPLY,
    ROUTER_SET_DISCARD,
    ROUTER_SET_TABLE,
    merge_causes,
)
from repro.sim.process import Event

#: The port connecting a router to its own node's controller.
LOCAL_PORT = -1

_NORMAL_LANES = (Lane.REQUEST, Lane.REPLY)
_RECOVERY_LANES = (Lane.RECOVERY_A, Lane.RECOVERY_B)


def _payload_line(packet):
    """Memory line carried by a packet, if its payload names one."""
    payload = packet.payload
    if type(payload) is dict:
        return payload.get("line")
    return None


class RouterStats:
    """Per-router packet accounting (useful in tests and debugging)."""

    def __init__(self):
        self.forwarded = 0
        self.delivered_local = 0
        self.dropped_failed = 0
        self.dropped_unroutable = 0
        self.dropped_discard = 0
        self.dropped_stall = 0
        self.dropped_link = 0
        self.dropped_intermittent = 0
        self.probes_answered = 0


class NodeInterface:
    """The router-facing side of a node controller (MAGIC NI).

    Holds the bounded inbox the router delivers into, and the outbound queue
    MAGIC sends from.  The inbox bound is what turns a non-consuming
    controller (infinite-loop fault) into interconnect back-pressure.
    """

    def __init__(self, sim, params, node_id):
        self.sim = sim
        self.params = params
        self.node_id = node_id
        self.router = None
        from repro.sim.channel import Channel
        self.inbox = Channel(sim, name="ni%d.inbox" % node_id)
        self._reserved = 0
        self.failed = False          # node failure: arrivals silently dropped
        self.consuming = True        # infinite-loop fault clears this
        self.trace = None            # telemetry recorder (None: disabled)
        self.fault_lineage = None    # (root id, inject eid) when failed
        self._outbox = deque()
        self._pump_proc = None
        self._space_event = None

    # -- router-side API -----------------------------------------------------

    def can_accept(self):
        if self.failed:
            return True   # failed controllers sink packets (paper §4.1)
        return len(self.inbox) + self._reserved < self.params.magic_inbox_capacity

    def reserve(self):
        self._reserved += 1

    def complete_delivery(self, packet):
        self._reserved = max(0, self._reserved - 1)
        if self.failed:
            tr = self.trace
            if tr is not None:
                # The failed controller sinks the packet: the sink event
                # descends both from the packet's own chain and from the
                # fault that killed this interface.
                root, cause = packet.root_cause, packet.cause_eid
                lineage = self.fault_lineage
                if lineage is not None:
                    if root is None:
                        root = lineage[0]
                    cause = merge_causes(cause, lineage[1])
                tr.emit("pkt", "sink", node=self.node_id, cause=cause,
                        kind=str(packet.kind), src=packet.src,
                        lane=packet.lane.name, uid=packet.uid, root=root,
                        line=_payload_line(packet))
            return
        tr = self.trace
        if tr is not None:
            eid = tr.emit("pkt", "recv", node=self.node_id,
                          cause=packet.cause_eid, kind=str(packet.kind),
                          src=packet.src, lane=packet.lane.name,
                          hops=packet.hops, uid=packet.uid,
                          truncated=packet.truncated,
                          root=packet.root_cause,
                          line=_payload_line(packet))
            if eid is not None:
                packet.cause_eid = eid
        self.inbox.put(packet)

    # -- controller-side API ---------------------------------------------------

    def receive(self):
        """Event yielding the next inbound packet; frees a router credit."""
        event = self.inbox.get()
        self._notify_router()
        return event

    def try_receive(self):
        """Non-blocking receive; frees a router credit when a packet pops."""
        packet = self.inbox.try_get()
        if packet is not None:
            self._notify_router()
        return packet

    def _notify_router(self):
        if self.router is not None:
            self.router.notify()

    def send(self, packet):
        """Queue an outbound packet; the pump injects it when space allows."""
        packet.inject_time = self.sim.now
        tr = self.trace
        if tr is not None:
            eid = tr.emit("pkt", "send", node=self.node_id,
                          cause=packet.cause_eid, kind=str(packet.kind),
                          dst=packet.dst, lane=packet.lane.name,
                          uid=packet.uid, root=packet.root_cause,
                          line=_payload_line(packet))
            if eid is not None:
                packet.cause_eid = eid
        self._outbox.append(packet)
        self._kick_pump()

    @property
    def outbox_depth(self):
        return len(self._outbox)

    def start(self):
        """Spawn the outbound pump process (called by the network)."""
        self._pump_proc = self.sim.spawn(
            self._pump(), name="ni%d.pump" % self.node_id)

    def _kick_pump(self):
        if self._space_event is not None and not self._space_event.triggered:
            self._space_event.trigger()

    def notify_space(self):
        """Router informs us a local input-buffer slot was freed."""
        self._kick_pump()

    def _pump(self):
        while True:
            while self._outbox and not self.failed:
                packet = self._outbox[0]
                if self.router.inject_local(packet):
                    self._outbox.popleft()
                else:
                    break
            self._space_event = Event(self.sim)
            yield self._space_event
            self._space_event = None

    def fail(self):
        self.failed = True
        self.inbox.clear()
        self._outbox.clear()

    def stop_consuming(self):
        """Model a MAGIC firmware infinite loop: inbox is never drained."""
        self.consuming = False


class Router:
    """A single router of the interconnect fabric."""

    def __init__(self, sim, params, router_id):
        self.sim = sim
        self.params = params
        self.router_id = router_id
        self.links = {}              # port -> Link
        self.node_interface = None   # NodeInterface on LOCAL_PORT
        self.table = {}              # dst node -> port (normal lanes)
        self.discard_ports = set()   # isolation during interconnect recovery
        self.failed = False
        self.stats = RouterStats()
        self.trace = None            # telemetry recorder (None: disabled)
        self.fault_lineage = None    # (root id, inject eid) when failed

        self._buffers = {}           # (port, lane) -> deque of packets
        self._scan_order = ()        # buffer keys, deterministic scan order
        self._head_since = {}        # (port, lane) -> time current head stalled
        self._reserved = {}          # (port, lane) -> credits handed upstream
        self._output_busy_until = {} # port -> time
        self._wake_event = None
        self._dirty = False
        self._proc = None

    # -- wiring ---------------------------------------------------------------

    def attach_link(self, port, link):
        self.links[port] = link
        for lane in Lane:
            self._buffers[(port, lane)] = deque()
            self._reserved[(port, lane)] = 0
        self._output_busy_until[port] = 0.0
        self._rebuild_scan_order()

    def attach_node(self, node_interface):
        self.node_interface = node_interface
        node_interface.router = self
        for lane in Lane:
            self._buffers[(LOCAL_PORT, lane)] = deque()
            self._reserved[(LOCAL_PORT, lane)] = 0
        self._output_busy_until[LOCAL_PORT] = 0.0
        self._rebuild_scan_order()

    def _rebuild_scan_order(self):
        """Buffers only appear at wiring time, so the deterministic scan
        order is computed here instead of re-sorting on every wakeup."""
        self._scan_order = tuple(
            sorted(self._buffers, key=lambda k: (k[0], int(k[1]))))

    def start(self):
        self._proc = self.sim.spawn(
            self._run(), name="router%d" % self.router_id)

    # -- capacity / credits -----------------------------------------------------

    def _capacity(self, lane):
        if lane in _RECOVERY_LANES:
            return self.params.recovery_buffer_capacity
        return self.params.buffer_capacity

    def free_slots(self, port, lane):
        key = (port, lane)
        return (self._capacity(lane)
                - len(self._buffers[key]) - self._reserved[key])

    def try_reserve(self, port, lane):
        """Reserve one downstream slot for an in-flight transfer."""
        if self.failed:
            return True   # failed routers sink anything sent at them
        if self.free_slots(port, lane) <= 0:
            return False
        self._reserved[(port, lane)] += 1
        return True

    def release(self, port, lane):
        self._reserved[(port, lane)] = max(
            0, self._reserved[(port, lane)] - 1)

    def _note_drop(self, reason, packet, lineage=None):
        """Emit a telemetry event for a dropped packet (stats already
        incremented by the caller).  ``lineage`` is the (root, inject eid)
        of the component fault responsible, merged into the causal edge."""
        tr = self.trace
        if tr is not None:
            root, cause = packet.root_cause, packet.cause_eid
            if lineage is not None:
                if root is None:
                    root = lineage[0]
                cause = merge_causes(cause, lineage[1])
            tr.emit("pkt", "drop", node=self.router_id, cause=cause,
                    reason=reason, kind=str(packet.kind), src=packet.src,
                    dst=packet.dst, lane=packet.lane.name, uid=packet.uid,
                    root=root, line=_payload_line(packet))

    def receive(self, packet, port, lane):
        """A transfer completed: enqueue the packet at an input buffer."""
        self._reserved[(port, lane)] = max(
            0, self._reserved[(port, lane)] - 1)
        if self.failed:
            self.stats.dropped_failed += 1
            self._note_drop("failed_router", packet, self.fault_lineage)
            return
        if packet.is_source_routed:
            packet.trace_ports.append(port)
        packet.hops += 1
        buffer = self._buffers[(port, lane)]
        if not buffer:
            self._head_since[(port, lane)] = self.sim.now
        buffer.append(packet)
        self.notify()

    # -- local injection ----------------------------------------------------------

    def inject_local(self, packet):
        """Node controller pushes a packet into the router's local port."""
        if self.failed:
            self.stats.dropped_failed += 1
            self._note_drop("failed_router", packet, self.fault_lineage)
            return True
        key = (LOCAL_PORT, packet.lane)
        if (len(self._buffers[key]) + self._reserved[key]
                >= self._capacity(packet.lane)):
            return False
        if not self._buffers[key]:
            self._head_since[key] = self.sim.now
        self._buffers[key].append(packet)
        self.notify()
        return True

    # -- forwarding engine -----------------------------------------------------------

    def notify(self):
        self._dirty = True
        if self._wake_event is not None and not self._wake_event.triggered:
            self._wake_event.trigger()

    def _run(self):
        while True:
            self._dirty = False
            if not self.failed:
                self._scan_once()
            if self._dirty:
                # New arrivals or credits while scanning: scan again.
                yield 0.0
                continue
            self._wake_event = Event(self.sim)
            yield self._wake_event
            self._wake_event = None

    def _scan_once(self):
        """One pass over all input buffers, forwarding whatever can move."""
        now = self.sim.now
        for key in self._scan_order:
            port, lane = key
            buffer = self._buffers[key]
            while buffer:
                packet = buffer[0]
                outcome = self._try_forward(packet, port, lane, now)
                if outcome == "moved":
                    buffer.popleft()
                    if buffer:
                        self._head_since[key] = now
                    self._credit_upstream(port)
                    continue
                if outcome == "blocked":
                    self._maybe_stall_discard(key, buffer, port, lane, now)
                    break
                raise AssertionError(outcome)

    def _maybe_stall_discard(self, key, buffer, port, lane, now):
        """Discard long-stalled recovery-lane packets (paper §4.1)."""
        if lane not in _RECOVERY_LANES:
            return
        stalled_for = now - self._head_since.get(key, now)
        threshold = self.params.recovery_stall_discard
        if stalled_for >= threshold:
            packet = buffer.popleft()
            self.stats.dropped_stall += 1
            self._note_drop("stall", packet)
            if buffer:
                self._head_since[key] = now
            self._credit_upstream(port)
            self.notify()
        else:
            # Re-check when the threshold would be crossed.
            self.sim.schedule(threshold - stalled_for, self.notify)

    def _credit_upstream(self, port):
        """A slot freed on ``port``: wake whoever feeds that buffer."""
        if port == LOCAL_PORT:
            if self.node_interface is not None:
                self.node_interface.notify_space()
            return
        link = self.links.get(port)
        if link is None:
            return
        upstream, _ = link.other_side(self.router_id)
        upstream.notify()

    def _route_of(self, packet):
        """Output port for a packet, or None if unroutable."""
        if packet.is_source_routed:
            next_port = packet.next_route_port()
            if next_port is None:
                return LOCAL_PORT
            return next_port
        if packet.dst == self.router_id:
            return LOCAL_PORT
        return self.table.get(packet.dst)

    def _try_forward(self, packet, in_port, lane, now):
        out_port = self._route_of(packet)

        if out_port is None:
            self.stats.dropped_unroutable += 1
            self._note_drop("unroutable", packet)
            return "moved"   # consumed (dropped)

        if out_port == LOCAL_PORT and packet.kind in (
                ROUTER_PROBE, ROUTER_SET_DISCARD, ROUTER_SET_TABLE):
            # Router-addressed packets are handled by the router hardware
            # itself, even when the local port is in the discard set — the
            # recovery algorithm must stay able to probe and reprogram a
            # router whose node it has isolated.
            if packet.kind == ROUTER_PROBE:
                self._answer_probe(packet)
            else:
                self._apply_control(packet)
            return "moved"

        if out_port in self.discard_ports:
            self.stats.dropped_discard += 1
            self._note_drop("discard_port", packet)
            return "moved"

        if out_port == LOCAL_PORT:
            return self._deliver_local(packet, now)

        if out_port == in_port and not packet.is_source_routed:
            # Table inconsistency during reconfiguration: drop rather than
            # bounce forever.
            self.stats.dropped_unroutable += 1
            self._note_drop("bounce", packet)
            return "moved"

        link = self.links.get(out_port)
        if link is None:
            self.stats.dropped_unroutable += 1
            self._note_drop("no_link", packet)
            return "moved"

        if self._output_busy_until[out_port] > now:
            self.sim.schedule(
                self._output_busy_until[out_port] - now, self.notify)
            return "blocked"

        if link.failed:
            # Black hole: the packet is sunk (paper §4.1).
            self.stats.dropped_link += 1
            self._note_drop("failed_link", packet, link.fault_lineage)
            return "moved"

        if link.should_drop(packet):
            # Intermittent link fault: the packet is sunk mid-crossing.
            self.stats.dropped_intermittent += 1
            self._note_drop("intermittent", packet, link.fault_lineage)
            return "moved"

        downstream, downstream_port = link.other_side(self.router_id)
        if not downstream.try_reserve(downstream_port, packet.lane):
            return "blocked"

        if packet.is_source_routed:
            packet.advance_route()
        transfer_time = self.params.packet_transfer_time(packet.flits)
        self._output_busy_until[out_port] = now + packet.flits * self.params.flit_time
        record = _Transfer(packet, link, downstream, downstream_port)
        link.in_flight.append(record)
        self.sim.schedule(transfer_time, self._complete_transfer, record)
        self.stats.forwarded += 1
        return "moved"

    def _complete_transfer(self, record):
        if record in record.link.in_flight:
            record.link.in_flight.remove(record)
        record.downstream.receive(
            record.packet, record.downstream_port, record.packet.lane)

    # -- local delivery -------------------------------------------------------------

    def _deliver_local(self, packet, now):
        interface = self.node_interface
        if interface is None:
            self.stats.dropped_unroutable += 1
            return "moved"
        if not interface.can_accept():
            return "blocked"
        if self._output_busy_until[LOCAL_PORT] > now:
            self.sim.schedule(
                self._output_busy_until[LOCAL_PORT] - now, self.notify)
            return "blocked"
        interface.reserve()
        transfer_time = self.params.packet_transfer_time(packet.flits)
        self._output_busy_until[LOCAL_PORT] = (
            now + packet.flits * self.params.flit_time)
        self.sim.schedule(
            transfer_time, interface.complete_delivery, packet)
        self.stats.delivered_local += 1
        return "moved"

    def _answer_probe(self, probe):
        """Reply to a router probe in hardware (always, while powered)."""
        self.stats.probes_answered += 1
        reply = Packet(
            src=self.router_id, dst=probe.src,
            lane=probe.lane, kind=ROUTER_PROBE_REPLY,
            payload={"router_id": self.router_id,
                     "probe_uid": probe.uid,
                     "echo": probe.payload},
            flits=2,
            source_route=list(reversed(probe.trace_ports)))
        reply.root_cause = probe.root_cause
        reply.cause_eid = probe.cause_eid
        self._inject_reply(reply)

    def _apply_control(self, packet):
        """Apply a recovery control command to this router's hardware."""
        payload = packet.payload or {}
        if packet.kind == ROUTER_SET_DISCARD:
            self.set_discard_ports(payload.get("ports", ()))
        else:
            self.program_table(payload.get("table", {}))
        ack = Packet(
            src=self.router_id, dst=packet.src,
            lane=packet.lane, kind=ROUTER_CTRL_ACK,
            payload={"router_id": self.router_id,
                     "ctrl_uid": packet.uid,
                     "ctrl_key": payload.get("ctrl_key")},
            flits=2,
            source_route=list(reversed(packet.trace_ports)))
        ack.root_cause = packet.root_cause
        ack.cause_eid = packet.cause_eid
        self._inject_reply(ack)

    def _inject_reply(self, reply):
        """Queue a router-generated reply as if it came from the local port."""
        key = (LOCAL_PORT, reply.lane)
        if (len(self._buffers[key]) + self._reserved[key]
                < self._capacity(reply.lane)):
            if not self._buffers[key]:
                self._head_since[key] = self.sim.now
            self._buffers[key].append(reply)
            self.notify()
        # else: reply lost under extreme congestion; the sender will retry.

    # -- failure & reconfiguration ------------------------------------------------------

    def fail(self, lineage=None):
        """Router failure: lose all buffered packets, sink all arrivals."""
        if self.failed:
            return
        self.failed = True
        if lineage is not None:
            self.fault_lineage = lineage
        lost = 0
        for buffer in self._buffers.values():
            self.stats.dropped_failed += len(buffer)
            lost += len(buffer)
            buffer.clear()
        tr = self.trace
        if tr is not None:
            tr.emit("pkt", "drop", node=self.router_id,
                    cause=None if lineage is None else lineage[1],
                    reason="router_fail", count=lost,
                    root=None if lineage is None else lineage[0])

    def set_discard_ports(self, ports):
        self.discard_ports = set(ports)
        self.notify()

    def program_table(self, table):
        self.table = dict(table)
        self.notify()

    def buffered_packet_count(self):
        return sum(len(b) for b in self._buffers.values())

    def __repr__(self):
        state = "FAILED" if self.failed else "up"
        return "<Router %d (%s) buffered=%d>" % (
            self.router_id, state, self.buffered_packet_count())


class _Transfer:
    """A packet in flight across a link."""

    __slots__ = ("packet", "link", "downstream", "downstream_port")

    def __init__(self, packet, link, downstream, downstream_port):
        self.packet = packet
        self.link = link
        self.downstream = downstream
        self.downstream_port = downstream_port
