"""CrayLink/SPIDER-style interconnect model.

The interconnect is the substrate whose *failure modes* drive the paper:

* reliable, flow-controlled point-to-point delivery during normal operation
  (credit-based back-pressure, per-lane buffering, in-order per-lane
  delivery);
* black-hole behaviour of failed links and routers;
* packet truncation when a link fails mid-transfer;
* congestion back-up when a node controller stops accepting packets;
* dedicated recovery virtual lanes with stall-discard semantics;
* source-routed packets and router probes used by the recovery algorithm;
* reprogrammable per-router routing tables (including the discard regions
  used to isolate failed areas during interconnect recovery).
"""

from repro.interconnect.packet import Packet, ROUTER_PROBE, ROUTER_PROBE_REPLY
from repro.interconnect.topology import (
    FatHypercube,
    Mesh2D,
    Topology,
    make_topology,
)
from repro.interconnect.routing import (
    channel_dependency_graph,
    compute_source_route,
    compute_up_down_tables,
    graph_is_acyclic,
)
from repro.interconnect.link import Link
from repro.interconnect.router import LOCAL_PORT, NodeInterface, Router
from repro.interconnect.network import Network

__all__ = [
    "FatHypercube",
    "Link",
    "LOCAL_PORT",
    "Mesh2D",
    "Network",
    "NodeInterface",
    "Packet",
    "ROUTER_PROBE",
    "ROUTER_PROBE_REPLY",
    "Router",
    "Topology",
    "channel_dependency_graph",
    "compute_source_route",
    "compute_up_down_tables",
    "graph_is_acyclic",
    "make_topology",
]
