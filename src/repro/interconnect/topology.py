"""Interconnect topologies: 2D mesh and fat hypercube.

The paper runs its experiments on a 2D mesh for simplicity and notes that
FLASH actually uses a hierarchical fat hypercube whose smaller diameter makes
the dissemination phase scale better (Figure 5.5).  Both are provided; the
recovery algorithm is topology-independent (it only sees routers, ports and
links), exactly as the paper claims of its algorithms.

Conventions: one router per node, ``router id == node id``.  Each router has
numbered ports; port numbering is topology-defined and also used by
source-routed packets.  The node itself attaches through the distinguished
``LOCAL_PORT`` (defined in :mod:`repro.interconnect.router`).
"""

from repro.common.errors import ConfigurationError


class Topology:
    """Abstract topology: a set of routers and their port-level wiring."""

    #: human-readable name used in configs and results
    name = "abstract"

    def __init__(self, num_nodes):
        if num_nodes < 1:
            raise ConfigurationError("need at least one node")
        self.num_nodes = num_nodes

    def neighbors(self, router_id):
        """Map of ``port -> (neighbor_router, neighbor_port)``."""
        raise NotImplementedError

    def routing_port(self, router_id, dst_node):
        """Deadlock-free baseline routing: next output port toward dst."""
        raise NotImplementedError

    # -- derived helpers ------------------------------------------------------

    def links(self):
        """All undirected links as (router_a, port_a, router_b, port_b)."""
        seen = set()
        result = []
        for rid in range(self.num_nodes):
            for port, (nbr, nbr_port) in sorted(self.neighbors(rid).items()):
                key = (min(rid, nbr), max(rid, nbr))
                if key in seen:
                    continue
                seen.add(key)
                result.append((rid, port, nbr, nbr_port))
        return result

    def baseline_table(self, router_id):
        """Full routing table ``dst_node -> port`` for one router."""
        table = {}
        for dst in range(self.num_nodes):
            if dst == router_id:
                continue
            table[dst] = self.routing_port(router_id, dst)
        return table

    def diameter(self):
        """Hop diameter of the healthy topology."""
        raise NotImplementedError


class Mesh2D(Topology):
    """W x H mesh with dimension-ordered (X then Y) routing.

    Ports: 0 = east (+x), 1 = west (-x), 2 = north (+y), 3 = south (-y).
    """

    name = "mesh"
    EAST, WEST, NORTH, SOUTH = 0, 1, 2, 3

    def __init__(self, width, height):
        super().__init__(width * height)
        self.width = width
        self.height = height

    @classmethod
    def for_nodes(cls, num_nodes):
        """Most-square mesh holding exactly ``num_nodes`` nodes."""
        best = None
        for width in range(1, num_nodes + 1):
            if num_nodes % width:
                continue
            height = num_nodes // width
            shape = (max(width, height), min(width, height))
            if best is None or shape < (max(best), min(best)):
                best = (width, height)
        return cls(*best)

    def coords(self, router_id):
        return router_id % self.width, router_id // self.width

    def router_at(self, x, y):
        return y * self.width + x

    def neighbors(self, router_id):
        x, y = self.coords(router_id)
        result = {}
        if x + 1 < self.width:
            result[self.EAST] = (self.router_at(x + 1, y), self.WEST)
        if x > 0:
            result[self.WEST] = (self.router_at(x - 1, y), self.EAST)
        if y + 1 < self.height:
            result[self.NORTH] = (self.router_at(x, y + 1), self.SOUTH)
        if y > 0:
            result[self.SOUTH] = (self.router_at(x, y - 1), self.NORTH)
        return result

    def routing_port(self, router_id, dst_node):
        x, y = self.coords(router_id)
        dx, dy = self.coords(dst_node)
        if dx > x:
            return self.EAST
        if dx < x:
            return self.WEST
        if dy > y:
            return self.NORTH
        if dy < y:
            return self.SOUTH
        raise ConfigurationError("routing to self")

    def diameter(self):
        return (self.width - 1) + (self.height - 1)


class FatHypercube(Topology):
    """Binary hypercube with e-cube routing (port k flips bit k).

    FLASH's interconnect is a hierarchical fat hypercube; for the purposes of
    this reproduction what matters is its logarithmic diameter, which is what
    makes the dissemination phase scale better than on a mesh (Figure 5.5).
    """

    name = "hypercube"

    def __init__(self, dimension):
        super().__init__(1 << dimension)
        self.dimension = dimension

    @classmethod
    def for_nodes(cls, num_nodes):
        dimension = max(1, (num_nodes - 1).bit_length())
        if (1 << dimension) != num_nodes:
            raise ConfigurationError(
                "hypercube needs a power-of-two node count, got %d"
                % num_nodes)
        return cls(dimension)

    def neighbors(self, router_id):
        return {
            bit: (router_id ^ (1 << bit), bit)
            for bit in range(self.dimension)
        }

    def routing_port(self, router_id, dst_node):
        diff = router_id ^ dst_node
        if diff == 0:
            raise ConfigurationError("routing to self")
        return (diff & -diff).bit_length() - 1   # lowest set bit

    def diameter(self):
        return self.dimension


def make_topology(kind, num_nodes):
    """Build a topology by name ('mesh' or 'hypercube')."""
    if kind == "mesh":
        return Mesh2D.for_nodes(num_nodes)
    if kind == "hypercube":
        return FatHypercube.for_nodes(num_nodes)
    raise ConfigurationError("unknown topology %r" % kind)
