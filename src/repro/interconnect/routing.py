"""Routing-table computation, including post-fault deadlock-free rerouting.

During interconnect recovery (paper §4.4) the routing tables must be
recomputed so that traffic is routed around the failed regions *without
introducing cycles* in the channel-dependency graph (which would risk
wormhole deadlock).  The paper uses the turn method and techniques from its
citations [5][21] and notes a fully general solution is open; as our
substitute we implement up*/down* routing on a BFS tree of the surviving
graph, which is provably deadlock-free and handles arbitrary fault shapes as
long as the surviving graph stays connected (the paper makes the same
connectivity assumption).

All functions here are pure: they take an explicit description of the
surviving graph and return tables, so the recovery code can run them on each
node's *view* of the system (the view built during dissemination).
"""

from collections import deque

from repro.common.errors import ConfigurationError


def surviving_adjacency(topology, dead_nodes=(), dead_links=()):
    """Adjacency of the surviving graph.

    ``dead_nodes`` are router ids whose *router* failed (a failed node whose
    router survives does **not** remove the router from the graph; packets
    can still be routed through it, as the recovery algorithm requires).
    ``dead_links`` are frozensets/tuples ``{a, b}`` of router ids.

    Returns ``adj[rid] -> list of (port, neighbor, neighbor_port)``.
    """
    dead_nodes = set(dead_nodes)
    dead_link_keys = {frozenset(link) for link in dead_links}
    adjacency = {}
    for rid in range(topology.num_nodes):
        if rid in dead_nodes:
            continue
        entries = []
        for port, (nbr, nbr_port) in sorted(topology.neighbors(rid).items()):
            if nbr in dead_nodes:
                continue
            if frozenset((rid, nbr)) in dead_link_keys:
                continue
            entries.append((port, nbr, nbr_port))
        adjacency[rid] = entries
    return adjacency


def bfs_tree(adjacency, root):
    """Breadth-first tree: returns (parent, depth) maps. parent[root] None."""
    if root not in adjacency:
        raise ConfigurationError("BFS root %r not in graph" % root)
    parent = {root: None}
    depth = {root: 0}
    frontier = deque([root])
    while frontier:
        rid = frontier.popleft()
        for _, nbr, _ in adjacency[rid]:
            if nbr not in parent:
                parent[nbr] = rid
                depth[nbr] = depth[rid] + 1
                frontier.append(nbr)
    return parent, depth


def bft_height(adjacency, root):
    """Height of the breadth-first tree rooted at ``root`` (paper §4.3)."""
    _, depth = bfs_tree(adjacency, root)
    return max(depth.values()) if depth else 0


def connected_component(adjacency, start):
    """Set of routers reachable from ``start`` in the surviving graph."""
    _, depth = bfs_tree(adjacency, start)
    return set(depth)


def compute_up_down_tables(adjacency, dead_node_controllers=()):
    """Compute deadlock-free routing tables for the surviving graph.

    We route along the BFS tree rooted at the lowest-id surviving router:
    a packet climbs toward the root until the destination lies in the
    current router's subtree, then descends tree links to it.  Every routed
    path is therefore up*down* along *tree* links only, and because the
    "destination in my subtree" predicate is consistent across routers, the
    per-router tables chain into exactly those paths — which makes the
    induced channel-dependency graph acyclic (verified by a property test).

    Parameters
    ----------
    adjacency:
        Output of :func:`surviving_adjacency` — routers that still forward.
    dead_node_controllers:
        Node ids whose *controller* is dead although the router works; they
        are excluded as destinations (the node map stops traffic to them
        anyway) but still forward traffic.

    Returns
    -------
    dict ``router_id -> {dst_node -> port}`` covering every surviving
    destination.
    """
    if not adjacency:
        return {}
    root = min(adjacency)
    parent, _depth = bfs_tree(adjacency, root)
    live_routers = set(parent)
    destinations = sorted(
        rid for rid in live_routers if rid not in set(dead_node_controllers))

    # ancestry[rid] = chain from rid up to root (inclusive), as a list.
    ancestry = {}
    for rid in live_routers:
        chain = []
        walk = rid
        while walk is not None:
            chain.append(walk)
            walk = parent[walk]
        ancestry[rid] = chain

    tables = {rid: {} for rid in live_routers}
    for dst in destinations:
        dst_chain = ancestry[dst]
        dst_ancestors = set(dst_chain)
        for rid in live_routers:
            if rid == dst:
                continue
            if rid in dst_ancestors:
                # dst is in rid's subtree: step down toward dst along the
                # tree — the next hop is dst's ancestor one level below rid.
                child = dst_chain[dst_chain.index(rid) - 1]
                tables[rid][dst] = _port_toward(adjacency, rid, child)
            else:
                tables[rid][dst] = _port_toward(adjacency, rid, parent[rid])
    return tables


def _port_toward(adjacency, src, neighbor):
    for port, nbr, _ in adjacency[src]:
        if nbr == neighbor:
            return port
    raise ConfigurationError(
        "no port from %r toward %r" % (src, neighbor))


def compute_source_route(adjacency, src, dst):
    """Shortest source route (list of output ports) from src to dst.

    Used by the recovery algorithm to send packets around failed regions
    (paper §4.1).  Returns None when dst is unreachable.
    """
    if src == dst:
        return []
    parent_port = {src: None}
    parent = {src: None}
    frontier = deque([src])
    while frontier:
        rid = frontier.popleft()
        for port, nbr, _ in adjacency.get(rid, ()):
            if nbr in parent:
                continue
            parent[nbr] = rid
            parent_port[nbr] = port
            if nbr == dst:
                route = []
                walk = dst
                while parent[walk] is not None:
                    route.append(parent_port[walk])
                    walk = parent[walk]
                route.reverse()
                return route
            frontier.append(nbr)
    return None


def channel_dependency_graph(adjacency, tables):
    """Directed graph over channels induced by the routing tables.

    A channel is a directed link ``(a, b)``.  Routing a packet that arrives
    at ``b`` over ``(a, b)`` and leaves over ``(b, c)`` creates the
    dependency ``(a, b) -> (b, c)``.  Wormhole routing is deadlock-free if
    this graph is acyclic.
    """
    port_to_neighbor = {
        rid: {port: nbr for port, nbr, _ in entries}
        for rid, entries in adjacency.items()
    }
    edges = set()
    for dst in sorted({d for table in tables.values() for d in table}):
        for rid, table in tables.items():
            if dst not in table:
                continue
            # packet can arrive at rid from any neighbor that routes via rid
            out_port = table[dst]
            out_nbr = port_to_neighbor[rid].get(out_port)
            if out_nbr is None:
                continue
            for src_rid, src_table in tables.items():
                if src_table.get(dst) is None:
                    continue
                if port_to_neighbor[src_rid].get(src_table[dst]) == rid:
                    edges.add(((src_rid, rid), (rid, out_nbr)))
    return edges


def graph_is_acyclic(edges):
    """True when the directed graph given as an edge set has no cycle."""
    adjacency = {}
    indegree = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        indegree.setdefault(src, 0)
        indegree[dst] = indegree.get(dst, 0) + 1
    ready = deque(node for node, deg in indegree.items() if deg == 0)
    removed = 0
    while ready:
        node = ready.popleft()
        removed += 1
        for nxt in adjacency.get(node, ()):
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return removed == len(indegree)
