"""Point-to-point links with in-flight transfer tracking.

Links fail as "black holes" (paper §4.1): traffic routed into a failed link
is silently sunk.  The one packet that is *on* the link at the instant of
failure is truncated and still delivered (§3.1) — the receiving node
controller detects the truncation and triggers recovery.
"""


class Link:
    """An undirected link between two router ports."""

    def __init__(self, router_a, port_a, router_b, port_b):
        self.router_a = router_a
        self.port_a = port_a
        self.router_b = router_b
        self.port_b = port_b
        self.failed = False
        #: transfer records currently on the wire (either direction)
        self.in_flight = []

    def endpoints(self):
        return (self.router_a.router_id, self.router_b.router_id)

    def other_side(self, from_router_id):
        """(destination router, destination port) seen from one endpoint."""
        if from_router_id == self.router_a.router_id:
            return self.router_b, self.port_b
        if from_router_id == self.router_b.router_id:
            return self.router_a, self.port_a
        raise ValueError("router %r not on this link" % from_router_id)

    def fail(self):
        """Fail the link: truncate whatever is mid-transfer right now."""
        if self.failed:
            return
        self.failed = True
        for record in self.in_flight:
            record.packet.truncate()

    def __repr__(self):
        state = "FAILED" if self.failed else "up"
        return "<Link %d:%d <-> %d:%d (%s)>" % (
            self.router_a.router_id, self.port_a,
            self.router_b.router_id, self.port_b, state)
