"""Point-to-point links with in-flight transfer tracking.

Links fail as "black holes" (paper §4.1): traffic routed into a failed link
is silently sunk.  The one packet that is *on* the link at the instant of
failure is truncated and still delivered (§3.1) — the receiving node
controller detects the truncation and triggers recovery.

Two transient behaviours support the multi-fault campaign engine
(:mod:`repro.campaign`):

* :meth:`heal` undoes a failure (transient link fault);
* an armed *drop rate* makes the link intermittently sink normal-lane
  packets.  Recovery-lane packets are never dropped: they are short,
  hardware-CRC-retried control packets, and keeping them reliable preserves
  the paper's §4.1 guarantee that recovery itself can always make progress.
"""

from repro.common.types import Lane
from repro.interconnect.packet import merge_causes

_NORMAL_LANES = (Lane.REQUEST, Lane.REPLY)


class Link:
    """An undirected link between two router ports."""

    def __init__(self, router_a, port_a, router_b, port_b):
        self.router_a = router_a
        self.port_a = port_a
        self.router_b = router_b
        self.port_b = port_b
        self.failed = False
        #: transfer records currently on the wire (either direction)
        self.in_flight = []
        #: intermittent-fault state: probability of sinking a normal-lane
        #: packet at transfer start, and the RNG the decision draws from
        self.drop_rate = 0.0
        self._drop_rng = None
        #: (root id, inject eid) of the fault that broke this link, for
        #: causal attribution of truncations and drops (forensics §11)
        self.fault_lineage = None

    def endpoints(self):
        return (self.router_a.router_id, self.router_b.router_id)

    def other_side(self, from_router_id):
        """(destination router, destination port) seen from one endpoint."""
        if from_router_id == self.router_a.router_id:
            return self.router_b, self.port_b
        if from_router_id == self.router_b.router_id:
            return self.router_a, self.port_a
        raise ValueError("router %r not on this link" % from_router_id)

    def fail(self, lineage=None):
        """Fail the link: truncate whatever is mid-transfer right now."""
        if self.failed:
            return
        self.failed = True
        if lineage is not None:
            self.fault_lineage = lineage
        for record in self.in_flight:
            packet = record.packet
            packet.truncate()
            if lineage is not None:
                if packet.root_cause is None:
                    packet.root_cause = lineage[0]
                packet.cause_eid = merge_causes(packet.cause_eid, lineage[1])

    def heal(self):
        """Undo a failure (transient link fault): traffic flows again."""
        self.failed = False

    def set_drop_rate(self, drop_rate, rng):
        """Arm (or, with rate 0, disarm) intermittent packet dropping."""
        self.drop_rate = drop_rate
        self._drop_rng = rng if drop_rate > 0 else None

    def should_drop(self, packet):
        """Intermittent-fault decision for one packet at transfer start."""
        if self.failed or self.drop_rate <= 0.0:
            return False
        if packet.lane not in _NORMAL_LANES:
            return False
        return self._drop_rng.random() < self.drop_rate

    def __repr__(self):
        state = "FAILED" if self.failed else "up"
        return "<Link %d:%d <-> %d:%d (%s)>" % (
            self.router_a.router_id, self.port_a,
            self.router_b.router_id, self.port_b, state)
