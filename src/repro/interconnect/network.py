"""The assembled interconnect fabric.

Builds one router per node from a :class:`~repro.interconnect.topology.Topology`,
wires the links, attaches a :class:`~repro.interconnect.router.NodeInterface`
per node, and programs the baseline (dimension-ordered / e-cube) routing
tables.  Also exposes the fault-injection and reconfiguration operations the
rest of the system needs:

* ``fail_link`` / ``fail_router`` / ``fail_node_interface``;
* per-router ``set_discard_ports`` and ``program_table`` (via the routers);
* helpers to query the *true* surviving graph (used by the fault oracle and
  by tests — the recovery algorithm itself never peeks; it discovers the
  state by probing).
"""

from repro.interconnect.link import Link
from repro.interconnect.router import NodeInterface, Router
from repro.interconnect.routing import surviving_adjacency


class Network:
    """Routers + links + node interfaces for one machine."""

    def __init__(self, sim, params, topology):
        self.sim = sim
        self.params = params
        self.topology = topology
        self.routers = [
            Router(sim, params, rid) for rid in range(topology.num_nodes)]
        self.interfaces = [
            NodeInterface(sim, params, nid)
            for nid in range(topology.num_nodes)]
        self.links = []
        self._link_by_pair = {}
        #: (root id, inject eid) of the most recent injected fault; the
        #: fallback for causal attribution of timeouts whose target
        #: component does not itself record a lineage (forensics §11)
        self.last_fault_lineage = None

        for rid_a, port_a, rid_b, port_b in topology.links():
            link = Link(self.routers[rid_a], port_a,
                        self.routers[rid_b], port_b)
            self.links.append(link)
            self._link_by_pair[frozenset((rid_a, rid_b))] = link
            self.routers[rid_a].attach_link(port_a, link)
            self.routers[rid_b].attach_link(port_b, link)

        for rid, router in enumerate(self.routers):
            router.attach_node(self.interfaces[rid])
            router.program_table(topology.baseline_table(rid))

    def start(self):
        """Spawn all router and interface processes."""
        for router in self.routers:
            router.start()
        for interface in self.interfaces:
            interface.start()

    # -- lookup -----------------------------------------------------------------

    def link_between(self, rid_a, rid_b):
        return self._link_by_pair.get(frozenset((rid_a, rid_b)))

    def interface(self, node_id):
        return self.interfaces[node_id]

    def router(self, router_id):
        return self.routers[router_id]

    # -- fault injection ----------------------------------------------------------

    def fail_link(self, rid_a, rid_b, lineage=None):
        link = self.link_between(rid_a, rid_b)
        if link is None:
            raise ValueError("no link between %d and %d" % (rid_a, rid_b))
        link.fail(lineage)
        self.routers[rid_a].notify()
        self.routers[rid_b].notify()

    def fail_router(self, router_id, lineage=None):
        """Router failure == the router plus all of its links fail (§4.1)."""
        router = self.routers[router_id]
        router.fail(lineage)
        for link in list(router.links.values()):
            link.fail(lineage)
            other, _ = link.other_side(router_id)
            other.notify()

    def heal_link(self, rid_a, rid_b):
        """Undo a (transient) link failure and wake both endpoint routers.

        A link whose endpoint router has failed stays down: the router
        failure took the link with it, and a healing connector cannot bring
        a dead router back.
        """
        link = self.link_between(rid_a, rid_b)
        if link is None:
            raise ValueError("no link between %d and %d" % (rid_a, rid_b))
        if self.routers[rid_a].failed or self.routers[rid_b].failed:
            return False
        link.heal()
        self.routers[rid_a].notify()
        self.routers[rid_b].notify()
        return True

    def set_link_drop(self, rid_a, rid_b, drop_rate, rng):
        """Arm (rate > 0) or disarm (rate 0) intermittent drops on a link."""
        link = self.link_between(rid_a, rid_b)
        if link is None:
            raise ValueError("no link between %d and %d" % (rid_a, rid_b))
        link.set_drop_rate(drop_rate, rng)
        self.routers[rid_a].notify()
        self.routers[rid_b].notify()

    def fail_node_interface(self, node_id):
        self.interfaces[node_id].fail()
        self.routers[node_id].notify()

    def wedge_node_interface(self, node_id):
        """Infinite-loop fault: the controller stops draining its inbox."""
        self.interfaces[node_id].stop_consuming()

    def fault_lineage_of(self, node_id):
        """Best-effort causal attribution for a silent non-response.

        A timeout on a request to ``node_id`` cannot observe *which* fault
        swallowed the traffic; this mirrors the hardware's situation (paper
        §4.2 timeouts carry no provenance).  We attribute to the target's
        own interface or router fault if one is recorded, else to the most
        recent injected fault — a documented heuristic, exact for
        single-fault runs.
        """
        lineage = self.interfaces[node_id].fault_lineage
        if lineage is not None:
            return lineage
        lineage = self.routers[node_id].fault_lineage
        if lineage is not None:
            return lineage
        return self.last_fault_lineage

    # -- ground-truth state (oracle/tests only) --------------------------------------

    def failed_router_ids(self):
        return {r.router_id for r in self.routers if r.failed}

    def failed_link_pairs(self):
        return {frozenset(l.endpoints()) for l in self.links if l.failed}

    def true_surviving_adjacency(self):
        """Adjacency of the surviving graph (ground truth, not discovered)."""
        return surviving_adjacency(
            self.topology,
            dead_nodes=self.failed_router_ids(),
            dead_links=self.failed_link_pairs())

    def total_buffered_packets(self):
        return sum(r.buffered_packet_count() for r in self.routers)

    def in_flight_packets(self):
        return sum(len(l.in_flight) for l in self.links)
