"""Packets carried by the interconnect.

A packet is either *table-routed* (normal coherence traffic: each router
looks up the destination node in its routing table) or *source-routed*
(recovery traffic: the sender embeds the exact sequence of output ports,
paper §4.1).  Router probes are source-routed packets whose route ends *at*
a router rather than at a node; a live router answers them in hardware.
"""

import itertools

from repro.common.types import Lane

#: Packet kinds handled by the routers themselves.
ROUTER_PROBE = "router_probe"
ROUTER_PROBE_REPLY = "router_probe_reply"
ROUTER_SET_DISCARD = "router_set_discard"
ROUTER_SET_TABLE = "router_set_table"
ROUTER_CTRL_ACK = "router_ctrl_ack"

_uid_counter = itertools.count()


def merge_causes(a, b):
    """Combine two causal-parent references (eid, tuple of eids, or None).

    Returns the non-None side when only one is set, otherwise a flat tuple
    of distinct parents (a single eid stays a bare int).  Used wherever two
    provenance chains meet: a packet sunk at a failed interface descends
    both from its send and from the fault that killed the interface.
    """
    if a is None:
        return b
    if b is None:
        return a
    first = a if isinstance(a, tuple) else (a,)
    second = b if isinstance(b, tuple) else (b,)
    merged = first + tuple(eid for eid in second if eid not in first)
    return merged[0] if len(merged) == 1 else merged


class Packet:
    """A message in flight.

    Parameters
    ----------
    src, dst:
        Node ids.  ``dst`` is ignored for source-routed packets whose route
        terminates at a router (probes).
    lane:
        Virtual lane (:class:`repro.common.types.Lane`).
    kind:
        Message type tag (protocol message name or recovery message name).
    payload:
        Arbitrary message body.  Dropped when the packet is truncated.
    flits:
        Size used for serialization-time accounting.
    source_route:
        Optional list of output-port indices, consumed hop by hop.
    """

    __slots__ = (
        "src", "dst", "lane", "kind", "payload", "flits",
        "source_route", "route_index", "truncated", "hops", "uid",
        "inject_time", "trace_ports", "root_cause", "cause_eid",
    )

    def __init__(self, src, dst, lane, kind, payload=None, flits=2,
                 source_route=None):
        self.src = src
        self.dst = dst
        self.lane = Lane(lane)
        self.kind = kind
        self.payload = payload
        self.flits = flits
        self.source_route = list(source_route) if source_route else None
        self.route_index = 0
        self.truncated = False
        self.hops = 0
        self.uid = next(_uid_counter)
        self.inject_time = None
        # Causal lineage (forensics, DESIGN.md §11): the fault root id this
        # packet descends from (if any) and the eid of the most recent trace
        # event on its provenance chain.  Pure data — nothing in the
        # interconnect branches on these, so untraced runs are unperturbed.
        self.root_cause = None
        self.cause_eid = None
        # Ports by which the packet arrived at each router along its path;
        # reversing this list yields the source route for a reply (used by
        # router probes and recovery pings).
        self.trace_ports = []

    @property
    def is_source_routed(self):
        return self.source_route is not None

    @property
    def is_recovery(self):
        return self.lane in (Lane.RECOVERY_A, Lane.RECOVERY_B)

    def next_route_port(self):
        """Peek the next source-route hop, or None when the route is done."""
        if self.source_route is None:
            return None
        if self.route_index >= len(self.source_route):
            return None
        return self.source_route[self.route_index]

    def advance_route(self):
        """Consume one source-route hop."""
        self.route_index += 1

    def truncate(self):
        """Mark the packet truncated and discard its data payload (§3.1)."""
        self.truncated = True
        self.payload = None

    def __repr__(self):
        route = ""
        if self.source_route is not None:
            route = " route=%s@%d" % (self.source_route, self.route_index)
        flags = " TRUNC" if self.truncated else ""
        return "<Packet #%d %s %d->%s lane=%s%s%s>" % (
            self.uid, self.kind, self.src, self.dst, self.lane.name,
            route, flags)
