"""Setup shim for environments whose setuptools cannot do PEP 660 editable
installs (pip install -e . --no-use-pep517 falls back to this)."""

from setuptools import setup

setup()
